//! Per-object access-pattern extraction (paper Fig. 8).

use crate::alloc::AllocRecord;
use crate::sample::MemSample;
use tiersim_mem::PAGE_SHIFT;

/// The scatter of sampled accesses to one object: page offset within the
/// object versus time, with the issuing thread — exactly what the paper
/// plots in Figure 8 to show that the hot object's accesses are random at
/// fine granularity while looking structured at coarse granularity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessPattern {
    /// `(seconds, page_offset_within_object, thread)` per external sample.
    pub points: Vec<(f64, u64, u16)>,
}

impl AccessPattern {
    /// Extracts the external-sample pattern of `object` from a trace.
    pub fn of(samples: &[MemSample], object: &AllocRecord, freq_hz: u64) -> AccessPattern {
        let base_page = object.addr.page().index();
        let points = samples
            .iter()
            .filter(|s| !s.is_store && s.is_external() && object.contains(s.addr))
            .map(|s| {
                (
                    s.time_cycles as f64 / freq_hz as f64,
                    (s.addr.raw() >> PAGE_SHIFT) - base_page,
                    s.thread.0,
                )
            })
            .collect();
        AccessPattern { points }
    }

    /// Restricts the pattern to `[t0, t1)` seconds — the paper's one-second
    /// zoom (Fig. 8b).
    pub fn zoom(&self, t0: f64, t1: f64) -> AccessPattern {
        AccessPattern {
            points: self.points.iter().copied().filter(|&(t, _, _)| t >= t0 && t < t1).collect(),
        }
    }

    /// Mean absolute page distance between consecutive samples of the
    /// *same thread*, normalized by the object's page span. Near 0 for a
    /// sequential walk; approaches ~1/3 for uniform random access within a
    /// partition. Returns `None` with fewer than two points.
    pub fn randomness(&self) -> Option<f64> {
        let span = self.points.iter().map(|&(_, p, _)| p).max()?.max(1);
        let mut jumps = 0.0;
        let mut n = 0u64;
        // BTreeMap keeps the per-thread fold order deterministic (the
        // result feeds reported randomness figures).
        let mut last: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
        for &(_, page, tid) in &self.points {
            if let Some(prev) = last.insert(tid, page) {
                jumps += page.abs_diff(prev) as f64;
                n += 1;
            }
        }
        (n > 0).then(|| jumps / n as f64 / span as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr, PAGE_SIZE};

    fn object(base: u64, pages: u64) -> AllocRecord {
        AllocRecord {
            id: crate::alloc::ObjectId(0),
            addr: VirtAddr::new(base),
            len: pages * PAGE_SIZE,
            alloc_time: 0,
            free_time: None,
            site: Arc::from("obj"),
        }
    }

    fn s(addr: u64, time: u64, tid: u16) -> MemSample {
        MemSample {
            time_cycles: time,
            addr: VirtAddr::new(addr),
            level: MemLevel::Nvm,
            latency_cycles: 1,
            tlb_miss: false,
            thread: ThreadId(tid),
            is_store: false,
        }
    }

    #[test]
    fn extracts_relative_pages() {
        let o = object(0x100000, 16);
        let samples = [
            s(0x100000, 0, 0),
            s(0x100000 + 3 * PAGE_SIZE, 1000, 1),
            s(0x500000, 0, 0), // outside the object
        ];
        let p = AccessPattern::of(&samples, &o, 1000);
        assert_eq!(p.points.len(), 2);
        assert_eq!(p.points[0], (0.0, 0, 0));
        assert_eq!(p.points[1], (1.0, 3, 1));
    }

    #[test]
    fn zoom_filters_time_window() {
        let o = object(0x100000, 16);
        let samples: Vec<_> = (0..10u64).map(|i| s(0x100000, i * 1000, 0)).collect();
        let p = AccessPattern::of(&samples, &o, 1000);
        let z = p.zoom(2.0, 5.0);
        assert_eq!(z.points.len(), 3);
    }

    #[test]
    fn sequential_walk_has_low_randomness() {
        let o = object(0x100000, 64);
        let seq: Vec<_> = (0..64u64).map(|i| s(0x100000 + i * PAGE_SIZE, i, 0)).collect();
        let p = AccessPattern::of(&seq, &o, 1000);
        assert!(p.randomness().unwrap() < 0.05);
    }

    #[test]
    fn scattered_walk_has_high_randomness() {
        let o = object(0x100000, 64);
        let scattered: Vec<_> =
            (0..64u64).map(|i| s(0x100000 + (i.wrapping_mul(37) % 64) * PAGE_SIZE, i, 0)).collect();
        let p = AccessPattern::of(&scattered, &o, 1000);
        assert!(p.randomness().unwrap() > 0.2);
    }

    #[test]
    fn randomness_needs_two_points() {
        let o = object(0x100000, 4);
        let p = AccessPattern::of(&[s(0x100000, 0, 0)], &o, 1000);
        assert!(p.randomness().is_none());
    }
}
