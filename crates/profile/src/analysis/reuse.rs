//! Reuse-interval analysis of two-touch pages (paper Fig. 5 and the §5.2
//! promotion-fraction result).

use crate::sample::MemSample;
use crate::stats::Summary;
use std::collections::BTreeMap;
use tiersim_mem::{Tier, VirtAddr};

/// Reuse statistics over the pages of one object that were externally
/// touched exactly twice.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseAnalysis {
    /// Pages with exactly two external touches.
    pub pages_analyzed: usize,
    /// Distribution of the time between the two touches, in seconds.
    pub intervals_secs: Option<Summary>,
    /// Fraction of analyzed pages whose first touch was on NVM and whose
    /// second was on DRAM — i.e. pages that were observably promoted
    /// between the touches (the paper finds at most 1.3%).
    pub promoted_fraction: f64,
}

/// Analyzes two-touch reuse for external load samples within
/// `[base, base+len)` (pass an object's range, or the whole address space
/// with `len == u64::MAX`).
///
/// # Examples
///
/// ```
/// use tiersim_mem::VirtAddr;
/// use tiersim_profile::two_touch_reuse;
///
/// let r = two_touch_reuse(&[], VirtAddr::new(0), u64::MAX, 1_000_000_000);
/// assert_eq!(r.pages_analyzed, 0);
/// assert!(r.intervals_secs.is_none());
/// ```
pub fn two_touch_reuse(
    samples: &[MemSample],
    base: VirtAddr,
    len: u64,
    freq_hz: u64,
) -> ReuseAnalysis {
    let end = base.raw().saturating_add(len);
    // Page-ordered (BTreeMap): the interval vector feeds the summary
    // statistics, so the fold order must not vary between runs.
    let mut per_page: BTreeMap<u64, Vec<(u64, Tier)>> = BTreeMap::new();
    for s in samples
        .iter()
        .filter(|s| !s.is_store && s.is_external() && s.addr >= base && s.addr.raw() < end)
    {
        // `is_external()` guarantees the level is a memory tier.
        let Some(tier) = s.level.tier() else { continue };
        per_page.entry(s.page().index()).or_default().push((s.time_cycles, tier));
    }

    let mut intervals = Vec::new();
    let mut promoted = 0usize;
    let mut analyzed = 0usize;
    for touches in per_page.values() {
        if touches.len() != 2 {
            continue;
        }
        analyzed += 1;
        let (mut first, mut second) = (touches[0], touches[1]);
        if first.0 > second.0 {
            core::mem::swap(&mut first, &mut second);
        }
        intervals.push((second.0 - first.0) as f64 / freq_hz as f64);
        if first.1 == Tier::Nvm && second.1 == Tier::Dram {
            promoted += 1;
        }
    }

    ReuseAnalysis {
        pages_analyzed: analyzed,
        intervals_secs: Summary::of(&intervals),
        promoted_fraction: if analyzed == 0 { 0.0 } else { promoted as f64 / analyzed as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemLevel, ThreadId, PAGE_SIZE};

    fn s(page: u64, time: u64, level: MemLevel) -> MemSample {
        MemSample {
            time_cycles: time,
            addr: VirtAddr::new(page * PAGE_SIZE),
            level,
            latency_cycles: 1,
            tlb_miss: false,
            thread: ThreadId(0),
            is_store: false,
        }
    }

    #[test]
    fn intervals_are_in_seconds() {
        let freq = 1000; // 1000 cycles per second
        let samples = [
            s(1, 0, MemLevel::Nvm),
            s(1, 2000, MemLevel::Nvm), // 2 s apart
            s(2, 100, MemLevel::Nvm),
            s(2, 600, MemLevel::Nvm), // 0.5 s apart
            s(3, 0, MemLevel::Nvm),   // one touch: excluded
        ];
        let r = two_touch_reuse(&samples, VirtAddr::new(0), u64::MAX, freq);
        assert_eq!(r.pages_analyzed, 2);
        let sum = r.intervals_secs.unwrap();
        assert_eq!(sum.min, 0.5);
        assert_eq!(sum.max, 2.0);
    }

    #[test]
    fn promotion_is_nvm_then_dram() {
        let samples = [
            s(1, 0, MemLevel::Nvm),
            s(1, 10, MemLevel::Dram), // promoted
            s(2, 0, MemLevel::Dram),
            s(2, 10, MemLevel::Nvm), // demoted, not promoted
            s(3, 0, MemLevel::Nvm),
            s(3, 10, MemLevel::Nvm),
        ];
        let r = two_touch_reuse(&samples, VirtAddr::new(0), u64::MAX, 1000);
        assert_eq!(r.pages_analyzed, 3);
        assert!((r.promoted_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_timestamps_are_handled() {
        let samples = [s(1, 500, MemLevel::Dram), s(1, 100, MemLevel::Nvm)];
        let r = two_touch_reuse(&samples, VirtAddr::new(0), u64::MAX, 100);
        assert_eq!(r.promoted_fraction, 1.0); // NVM at 100 precedes DRAM at 500
        assert_eq!(r.intervals_secs.unwrap().max, 4.0);
    }

    #[test]
    fn range_filter_excludes_other_objects() {
        let samples = [
            s(1, 0, MemLevel::Nvm),
            s(1, 10, MemLevel::Nvm),
            s(100, 0, MemLevel::Nvm),
            s(100, 10, MemLevel::Nvm),
        ];
        let r = two_touch_reuse(&samples, VirtAddr::new(0), 10 * PAGE_SIZE, 1000);
        assert_eq!(r.pages_analyzed, 1);
    }
}
