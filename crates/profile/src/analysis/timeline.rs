//! Time-series analyses: allocation timeline (Fig. 7) and binned sample
//! counts (Fig. 10).

use crate::alloc::AllocTracker;
use crate::sample::MemSample;

/// A step-function timeline of live allocated bytes (paper Fig. 7: "how
/// memory is allocated over time").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocTimeline {
    /// `(seconds, live_bytes)` after each allocation/free event, in time
    /// order.
    pub points: Vec<(f64, u64)>,
}

impl AllocTimeline {
    /// Builds the timeline from a tracker's records.
    pub fn of(tracker: &AllocTracker, freq_hz: u64) -> AllocTimeline {
        // Collect (time, delta) events.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for r in tracker.records() {
            events.push((r.alloc_time, r.len as i64));
            if let Some(f) = r.free_time {
                events.push((f, -(r.len as i64)));
            }
        }
        events.sort_unstable();
        let mut live: i64 = 0;
        let mut points = Vec::with_capacity(events.len());
        for (t, d) in events {
            live += d;
            debug_assert!(live >= 0, "live bytes went negative");
            points.push((t as f64 / freq_hz as f64, live as u64));
        }
        AllocTimeline { points }
    }

    /// Peak live bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.points.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }
}

/// Counts samples matching `keep` into fixed-width time bins; returns
/// `(bin_start_seconds, count)` for every bin from 0 to the last sample
/// (paper Fig. 10's "DRAM load accesses over time").
///
/// # Panics
///
/// Panics if `bin_secs` is not positive.
pub fn binned_counts(
    samples: &[MemSample],
    bin_secs: f64,
    freq_hz: u64,
    mut keep: impl FnMut(&MemSample) -> bool,
) -> Vec<(f64, u64)> {
    assert!(bin_secs > 0.0, "bin width must be positive");
    let mut bins: Vec<u64> = Vec::new();
    for s in samples.iter() {
        if !keep(s) {
            continue;
        }
        let t = s.time_cycles as f64 / freq_hz as f64;
        let idx = (t / bin_secs) as usize;
        if idx >= bins.len() {
            bins.resize(idx + 1, 0);
        }
        bins[idx] += 1;
    }
    bins.into_iter().enumerate().map(|(i, c)| (i as f64 * bin_secs, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr};

    #[test]
    fn timeline_steps_up_and_down() {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x1000), 100, "a", 0);
        t.on_mmap(VirtAddr::new(0x8000), 200, "b", 1000);
        t.on_munmap(VirtAddr::new(0x1000), 2000);
        let tl = AllocTimeline::of(&t, 1000);
        assert_eq!(tl.points, vec![(0.0, 100), (1.0, 300), (2.0, 200)]);
        assert_eq!(tl.peak_bytes(), 300);
    }

    #[test]
    fn empty_tracker_empty_timeline() {
        let tl = AllocTimeline::of(&AllocTracker::new(), 1000);
        assert!(tl.points.is_empty());
        assert_eq!(tl.peak_bytes(), 0);
    }

    fn s(time: u64, level: MemLevel) -> MemSample {
        MemSample {
            time_cycles: time,
            addr: VirtAddr::new(0x1000),
            level,
            latency_cycles: 1,
            tlb_miss: false,
            thread: ThreadId(0),
            is_store: false,
        }
    }

    #[test]
    fn binning_counts_per_interval() {
        let samples = [
            s(0, MemLevel::Dram),
            s(500, MemLevel::Dram),
            s(1500, MemLevel::Dram),
            s(1600, MemLevel::Nvm),
            s(2500, MemLevel::Dram),
        ];
        // freq 1000 Hz, 1 s bins; keep DRAM only.
        let bins = binned_counts(&samples, 1.0, 1000, |s| s.level == MemLevel::Dram);
        assert_eq!(bins, vec![(0.0, 2), (1.0, 1), (2.0, 1)]);
    }

    #[test]
    fn empty_bins_are_present_between_samples() {
        let samples = [s(0, MemLevel::Dram), s(3500, MemLevel::Dram)];
        let bins = binned_counts(&samples, 1.0, 1000, |_| true);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[1].1, 0);
        assert_eq!(bins[2].1, 0);
    }
}
