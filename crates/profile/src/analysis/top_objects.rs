//! Top-N object ranking by external samples (paper Fig. 6).

use crate::alloc::ObjectId;
use crate::mapping::MappedProfile;
use std::sync::Arc;
use tiersim_mem::Tier;

/// One bar of the paper's Figure 6: an object, its sample count on a
/// tier, and its share of that tier's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TopObjectRow {
    /// The object.
    pub id: ObjectId,
    /// Call-site label.
    pub site: Arc<str>,
    /// Object size in bytes.
    pub len: u64,
    /// Samples on the requested tier.
    pub samples: u64,
    /// Share of the tier's total samples, in `[0, 1]`.
    pub share: f64,
}

/// Returns the `n` objects with the most load samples on `tier`,
/// descending, with their share of the tier's samples.
///
/// # Examples
///
/// ```
/// use tiersim_mem::Tier;
/// use tiersim_profile::{top_objects, MappedProfile};
///
/// let rows = top_objects(&MappedProfile::default(), Tier::Nvm, 10);
/// assert!(rows.is_empty());
/// ```
pub fn top_objects(mapped: &MappedProfile, tier: Tier, n: usize) -> Vec<TopObjectRow> {
    let total: u64 = mapped.objects.iter().map(|o| o.samples_on(tier)).sum();
    if total == 0 {
        return Vec::new();
    }
    let ranked = match tier {
        Tier::Dram => mapped.top_by_dram(),
        Tier::Nvm => mapped.top_by_nvm(),
    };
    ranked
        .into_iter()
        .filter(|o| o.samples_on(tier) > 0)
        .take(n)
        .map(|o| TopObjectRow {
            id: o.id,
            site: Arc::clone(&o.site),
            len: o.len,
            samples: o.samples_on(tier),
            share: o.samples_on(tier) as f64 / total as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocTracker;
    use crate::mapping::map_samples;
    use crate::sample::MemSample;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr, PAGE_SIZE};

    fn setup() -> MappedProfile {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x100000), 4 * PAGE_SIZE, "hot", 0);
        t.on_mmap(VirtAddr::new(0x200000), 4 * PAGE_SIZE, "warm", 0);
        t.on_mmap(VirtAddr::new(0x300000), 4 * PAGE_SIZE, "cold", 0);
        let mut samples = Vec::new();
        let mut push = |addr: u64, level: MemLevel, count: usize| {
            for i in 0..count {
                samples.push(MemSample {
                    time_cycles: i as u64,
                    addr: VirtAddr::new(addr + (i as u64 * 64) % PAGE_SIZE),
                    level,
                    latency_cycles: 100,
                    tlb_miss: false,
                    thread: ThreadId(0),
                    is_store: false,
                });
            }
        };
        push(0x100000, MemLevel::Nvm, 6);
        push(0x200000, MemLevel::Nvm, 3);
        push(0x300000, MemLevel::Nvm, 1);
        push(0x200000, MemLevel::Dram, 5);
        map_samples(&t, &samples)
    }

    #[test]
    fn ranks_by_tier_samples() {
        let m = setup();
        let rows = top_objects(&m, Tier::Nvm, 10);
        assert_eq!(rows.len(), 3);
        assert_eq!(&*rows[0].site, "hot");
        assert_eq!(rows[0].samples, 6);
        assert!((rows[0].share - 0.6).abs() < 1e-12);
        assert_eq!(&*rows[2].site, "cold");
    }

    #[test]
    fn n_truncates() {
        let m = setup();
        assert_eq!(top_objects(&m, Tier::Nvm, 2).len(), 2);
    }

    #[test]
    fn dram_ranking_differs() {
        let m = setup();
        let rows = top_objects(&m, Tier::Dram, 10);
        assert_eq!(rows.len(), 1);
        assert_eq!(&*rows[0].site, "warm");
        assert_eq!(rows[0].share, 1.0);
    }

    #[test]
    fn shares_sum_to_one_over_all_objects() {
        let m = setup();
        let total: f64 = top_objects(&m, Tier::Nvm, usize::MAX).iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
