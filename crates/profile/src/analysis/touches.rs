//! Per-page touch-count histogram (paper Fig. 4).

use crate::sample::MemSample;
use std::collections::BTreeMap;

/// Histogram of external page touches: how many pages (and what share of
/// accesses) saw exactly one, exactly two, or three-plus sampled touches
/// over the whole run.
///
/// The paper's central characterization result: for graph analytics,
/// single-touch pages dominate (33–80% of external accesses), which starves
/// AutoNUMA's two-touch hot-page detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TouchHistogram {
    /// Pages with exactly one external touch.
    pub pages_one: u64,
    /// Pages with exactly two external touches.
    pub pages_two: u64,
    /// Pages with three or more external touches.
    pub pages_three_plus: u64,
    /// External accesses landing on one-touch pages (== `pages_one`).
    pub accesses_one: u64,
    /// External accesses landing on two-touch pages.
    pub accesses_two: u64,
    /// External accesses landing on 3+-touch pages.
    pub accesses_three_plus: u64,
}

impl TouchHistogram {
    /// Builds the histogram from external load samples.
    pub fn of(samples: &[MemSample]) -> TouchHistogram {
        let mut touches: BTreeMap<u64, u64> = BTreeMap::new();
        for s in samples.iter().filter(|s| !s.is_store && s.is_external()) {
            *touches.entry(s.page().index()).or_insert(0) += 1;
        }
        let mut h = TouchHistogram::default();
        for &n in touches.values() {
            match n {
                1 => {
                    h.pages_one += 1;
                    h.accesses_one += 1;
                }
                2 => {
                    h.pages_two += 1;
                    h.accesses_two += 2;
                }
                _ => {
                    h.pages_three_plus += 1;
                    h.accesses_three_plus += n;
                }
            }
        }
        h
    }

    /// Total distinct pages touched externally.
    pub fn total_pages(&self) -> u64 {
        self.pages_one + self.pages_two + self.pages_three_plus
    }

    /// Total external accesses.
    pub fn total_accesses(&self) -> u64 {
        self.accesses_one + self.accesses_two + self.accesses_three_plus
    }

    /// Fractions of *accesses* on (1, 2, 3+)-touch pages — the paper's
    /// Fig. 4 bars.
    pub fn access_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_accesses();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.accesses_one as f64 / t as f64,
            self.accesses_two as f64 / t as f64,
            self.accesses_three_plus as f64 / t as f64,
        )
    }

    /// Fractions of *pages* with (1, 2, 3+) touches.
    pub fn page_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_pages();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.pages_one as f64 / t as f64,
            self.pages_two as f64 / t as f64,
            self.pages_three_plus as f64 / t as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr, PAGE_SIZE};

    fn s(page: u64, level: MemLevel) -> MemSample {
        MemSample {
            time_cycles: 0,
            addr: VirtAddr::new(page * PAGE_SIZE + 8),
            level,
            latency_cycles: 100,
            tlb_miss: false,
            thread: ThreadId(0),
            is_store: false,
        }
    }

    #[test]
    fn classifies_touch_counts() {
        let samples = [
            s(1, MemLevel::Nvm), // page 1: one touch
            s(2, MemLevel::Dram),
            s(2, MemLevel::Nvm), // page 2: two
            s(3, MemLevel::Dram),
            s(3, MemLevel::Dram),
            s(3, MemLevel::Dram), // page 3: 3+
            s(4, MemLevel::L1),   // cache hit: ignored
        ];
        let h = TouchHistogram::of(&samples);
        assert_eq!(h.pages_one, 1);
        assert_eq!(h.pages_two, 1);
        assert_eq!(h.pages_three_plus, 1);
        assert_eq!(h.total_pages(), 3);
        assert_eq!(h.total_accesses(), 6);
        let (a1, a2, a3) = h.access_fractions();
        assert!((a1 - 1.0 / 6.0).abs() < 1e-12);
        assert!((a2 - 2.0 / 6.0).abs() < 1e-12);
        assert!((a3 - 3.0 / 6.0).abs() < 1e-12);
        let (p1, _, _) = h.page_fractions();
        assert!((p1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accesses_one_equals_pages_one() {
        let samples = [s(1, MemLevel::Nvm), s(9, MemLevel::Dram)];
        let h = TouchHistogram::of(&samples);
        assert_eq!(h.accesses_one, h.pages_one);
    }

    #[test]
    fn empty_is_zero() {
        let h = TouchHistogram::of(&[]);
        assert_eq!(h.access_fractions(), (0.0, 0.0, 0.0));
        assert_eq!(h.total_pages(), 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let samples: Vec<MemSample> = (0..50)
            .flat_map(|p| std::iter::repeat_n(s(p, MemLevel::Nvm), (p % 4 + 1) as usize))
            .collect();
        let h = TouchHistogram::of(&samples);
        let (a, b, c) = h.access_fractions();
        assert!((a + b + c - 1.0).abs() < 1e-9);
        let (x, y, z) = h.page_fractions();
        assert!((x + y + z - 1.0).abs() < 1e-9);
    }
}
