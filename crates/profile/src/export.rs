//! CSV export matching the paper artifact's trace files.
//!
//! The paper's pipeline writes `memory_trace.csv`, `mmap_trace.csv`,
//! `munmap_trace.csv` and the mapped per-tier traces
//! (`perfmem_trace_mapped_DRAM.csv` / `_PMEM.csv`); these writers produce
//! the same shapes so downstream plotting scripts could be reused.

use crate::alloc::AllocTracker;
use crate::sample::MemSample;
use std::io::{self, Write};
use tiersim_mem::Tier;

/// Writes the raw sample trace (`memory_trace.csv`): one row per sample
/// with timestamp, address, level, latency, TLB flag, thread and op.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_memory_trace<W: Write>(mut out: W, samples: &[MemSample]) -> io::Result<()> {
    writeln!(out, "time_cycles,addr,level,latency_cycles,tlb_miss,thread,op")?;
    for s in samples {
        writeln!(
            out,
            "{},{:#x},{},{},{},{},{}",
            s.time_cycles,
            s.addr.raw(),
            s.level,
            s.latency_cycles,
            u8::from(s.tlb_miss),
            s.thread.0,
            if s.is_store { "store" } else { "load" },
        )?;
    }
    Ok(())
}

/// Writes the allocation trace (`mmap_trace.csv`): timestamp, base, size,
/// call site — the record layout of the paper's §3.2.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_mmap_trace<W: Write>(mut out: W, tracker: &AllocTracker) -> io::Result<()> {
    writeln!(out, "object_id,alloc_time_cycles,addr,len,site")?;
    for r in tracker.records() {
        writeln!(out, "{},{},{:#x},{},{}", r.id.0, r.alloc_time, r.addr.raw(), r.len, r.site)?;
    }
    Ok(())
}

/// Writes the deallocation trace (`munmap_trace.csv`).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_munmap_trace<W: Write>(mut out: W, tracker: &AllocTracker) -> io::Result<()> {
    writeln!(out, "object_id,free_time_cycles,addr")?;
    for r in tracker.records() {
        if let Some(f) = r.free_time {
            writeln!(out, "{},{},{:#x}", r.id.0, f, r.addr.raw())?;
        }
    }
    Ok(())
}

/// Writes the mapped per-tier trace (`perfmem_trace_mapped_DRAM.csv` /
/// `perfmem_trace_mapped_PMEM.csv`): external load samples on `tier`
/// joined with their object id.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_mapped_trace<W: Write>(
    mut out: W,
    samples: &[MemSample],
    tracker: &AllocTracker,
    tier: Tier,
) -> io::Result<()> {
    writeln!(out, "time_cycles,addr,latency_cycles,tlb_miss,thread,object_id,site")?;
    for s in samples {
        if s.is_store || s.level.tier() != Some(tier) {
            continue;
        }
        let hit = tracker.object_at(s.addr).and_then(|id| tracker.record(id).map(|r| (id, r)));
        let (id, site) = match hit {
            Some((id, rec)) => (id.0 as i64, rec.site.as_ref()),
            None => (-1, "?"),
        };
        writeln!(
            out,
            "{},{:#x},{},{},{},{},{}",
            s.time_cycles,
            s.addr.raw(),
            s.latency_cycles,
            u8::from(s.tlb_miss),
            s.thread.0,
            id,
            site,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr};

    fn sample(level: MemLevel) -> MemSample {
        MemSample {
            time_cycles: 42,
            addr: VirtAddr::new(0x1000),
            level,
            latency_cycles: 777,
            tlb_miss: true,
            thread: ThreadId(3),
            is_store: false,
        }
    }

    #[test]
    fn memory_trace_rows() {
        let mut buf = Vec::new();
        write_memory_trace(&mut buf, &[sample(MemLevel::Nvm)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("time_cycles,"));
        assert_eq!(lines.next().unwrap(), "42,0x1000,PMEM,777,1,3,load");
    }

    #[test]
    fn mmap_and_munmap_traces() {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x2000), 4096, "edges", 5);
        t.on_munmap(VirtAddr::new(0x2000), 9);
        let mut buf = Vec::new();
        write_mmap_trace(&mut buf, &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,5,0x2000,4096,edges"));
        let mut buf2 = Vec::new();
        write_munmap_trace(&mut buf2, &t).unwrap();
        assert!(String::from_utf8(buf2).unwrap().contains("0,9,0x2000"));
    }

    #[test]
    fn mapped_trace_filters_tier_and_joins_objects() {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x1000), 4096, "edges", 0);
        let samples = [sample(MemLevel::Nvm), sample(MemLevel::Dram), sample(MemLevel::L1)];
        let mut buf = Vec::new();
        write_mapped_trace(&mut buf, &samples, &t, Tier::Nvm).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2); // header + 1 NVM row
        assert!(text.contains(",0,edges"));
    }

    #[test]
    fn unmapped_samples_get_sentinel_id() {
        let t = AllocTracker::new();
        let mut buf = Vec::new();
        write_mapped_trace(&mut buf, &[sample(MemLevel::Nvm)], &t, Tier::Nvm).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains(",-1,?"));
    }
}
