//! # tiersim-profile — PEBS-style memory profiling and object mapping
//!
//! Implements the paper's characterization methodology (Figure 2):
//!
//! 1. **Memory sampling** ([`Sampler`]): records every Nth access with its
//!    hierarchy level, address, latency and TLB flag — the simulated
//!    `perf-mem`.
//! 2. **Allocation tracking** ([`AllocTracker`]): records every simulated
//!    `mmap`/`munmap` with timestamp, size, base address and call-site
//!    label — the simulated `syscall_intercept` hook.
//! 3. **Sample→object mapping** ([`map_samples`]): joins the two into
//!    per-object profiles ([`ObjectProfile`]) with DRAM/NVM sample counts,
//!    latency costs and densities.
//!
//! On top of the mapping sit the analyses behind every figure and table of
//! the paper's evaluation: [`LevelDistribution`] (Fig. 3, Tables 1–3),
//! [`TouchHistogram`] (Fig. 4), [`two_touch_reuse`] (Fig. 5),
//! [`fn@top_objects`] (Fig. 6), [`AllocTimeline`]/[`binned_counts`]
//! (Figs. 7/10) and [`AccessPattern`] (Fig. 8). [`export`] writes CSVs in
//! the shapes of the paper artifact's trace files.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
pub mod analysis;
pub mod export;
mod mapping;
mod sample;
mod stats;

pub use alloc::{AllocRecord, AllocTracker, ObjectId};
pub use analysis::{
    binned_counts, top_objects, two_touch_reuse, AccessPattern, AllocTimeline, LevelDistribution,
    ReuseAnalysis, TopObjectRow, TouchHistogram,
};
pub use mapping::{map_samples, MappedProfile, ObjectProfile};
pub use sample::{MemSample, Sampler};
pub use stats::{percentile_sorted, Summary};
