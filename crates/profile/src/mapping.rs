//! Sample→object mapping (the join at the heart of the paper's Figure 2
//! methodology).

use crate::alloc::{AllocTracker, ObjectId};
use crate::sample::MemSample;
use std::collections::BTreeSet;
use std::sync::Arc;
use tiersim_mem::Tier;

/// Per-object access profile aggregated from load samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectProfile {
    /// The object.
    pub id: ObjectId,
    /// Call-site label.
    pub site: Arc<str>,
    /// Object size in bytes.
    pub len: u64,
    /// Allocation time in cycles.
    pub alloc_time: u64,
    /// Free time in cycles, if freed.
    pub free_time: Option<u64>,
    /// Load samples that hit caches.
    pub cache_samples: u64,
    /// Load samples that hit DRAM.
    pub dram_samples: u64,
    /// Load samples that hit NVM.
    pub nvm_samples: u64,
    /// Total latency of DRAM samples, in cycles.
    pub dram_cost_cycles: u64,
    /// Total latency of NVM samples, in cycles.
    pub nvm_cost_cycles: u64,
    /// Distinct pages seen in external samples.
    pub external_pages: u64,
}

impl ObjectProfile {
    /// External (DRAM + NVM) samples.
    pub fn external_samples(&self) -> u64 {
        self.dram_samples + self.nvm_samples
    }

    /// Total samples attributed to this object.
    pub fn total_samples(&self) -> u64 {
        self.cache_samples + self.external_samples()
    }

    /// External samples on one tier.
    pub fn samples_on(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Dram => self.dram_samples,
            Tier::Nvm => self.nvm_samples,
        }
    }

    /// Access density: total samples per byte — the ranking key of the
    /// paper's object-level placement (§7: "total memory accesses divided
    /// by allocation size").
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.total_samples() as f64 / self.len as f64
        }
    }
}

/// Result of mapping a sample trace onto tracked allocations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappedProfile {
    /// One profile per object, indexed by `ObjectId.0` (allocation order).
    pub objects: Vec<ObjectProfile>,
    /// Load samples whose address matched no tracked object (stack,
    /// globals, page cache…).
    pub unmapped_samples: u64,
    /// Store samples ignored by the mapping (the paper analyzes loads).
    pub store_samples: u64,
}

impl MappedProfile {
    /// Profiles ordered by NVM samples, descending (paper Fig. 6b).
    pub fn top_by_nvm(&self) -> Vec<&ObjectProfile> {
        let mut v: Vec<&ObjectProfile> = self.objects.iter().collect();
        v.sort_by(|a, b| b.nvm_samples.cmp(&a.nvm_samples).then(a.id.cmp(&b.id)));
        v
    }

    /// Profiles ordered by DRAM samples, descending (paper Fig. 6a).
    pub fn top_by_dram(&self) -> Vec<&ObjectProfile> {
        let mut v: Vec<&ObjectProfile> = self.objects.iter().collect();
        v.sort_by(|a, b| b.dram_samples.cmp(&a.dram_samples).then(a.id.cmp(&b.id)));
        v
    }

    /// Profiles ordered by access density, descending — the input order of
    /// the object-level static mapper.
    pub fn by_density(&self) -> Vec<&ObjectProfile> {
        let mut v: Vec<&ObjectProfile> = self.objects.iter().collect();
        v.sort_by(|a, b| b.density().total_cmp(&a.density()).then(a.id.cmp(&b.id)));
        v
    }

    /// The object with the most NVM samples, if any has one.
    pub fn hottest_nvm_object(&self) -> Option<&ObjectProfile> {
        self.objects.iter().filter(|o| o.nvm_samples > 0).max_by_key(|o| o.nvm_samples)
    }

    /// Total external load samples across objects.
    pub fn total_external(&self) -> u64 {
        self.objects.iter().map(|o| o.external_samples()).sum()
    }
}

/// Joins load samples with tracked allocations into per-object profiles.
///
/// # Examples
///
/// ```
/// use tiersim_mem::VirtAddr;
/// use tiersim_profile::{map_samples, AllocTracker};
///
/// let mut t = AllocTracker::new();
/// t.on_mmap(VirtAddr::new(0x1000), 4096, "edges", 0);
/// let mapped = map_samples(&t, &[]);
/// assert_eq!(mapped.objects.len(), 1);
/// assert_eq!(mapped.objects[0].total_samples(), 0);
/// ```
pub fn map_samples(tracker: &AllocTracker, samples: &[MemSample]) -> MappedProfile {
    let mut objects: Vec<ObjectProfile> = tracker
        .records()
        .iter()
        .map(|r| ObjectProfile {
            id: r.id,
            site: Arc::clone(&r.site),
            len: r.len,
            alloc_time: r.alloc_time,
            free_time: r.free_time,
            cache_samples: 0,
            dram_samples: 0,
            nvm_samples: 0,
            dram_cost_cycles: 0,
            nvm_cost_cycles: 0,
            external_pages: 0,
        })
        .collect();
    let mut pages: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); objects.len()];
    let mut out = MappedProfile::default();

    for s in samples {
        if s.is_store {
            out.store_samples += 1;
            continue;
        }
        let Some(id) = tracker.object_at(s.addr) else {
            out.unmapped_samples += 1;
            continue;
        };
        let o = &mut objects[id.0 as usize];
        match s.level.tier() {
            Some(Tier::Dram) => {
                o.dram_samples += 1;
                o.dram_cost_cycles += s.latency_cycles;
                pages[id.0 as usize].insert(s.page().index());
            }
            Some(Tier::Nvm) => {
                o.nvm_samples += 1;
                o.nvm_cost_cycles += s.latency_cycles;
                pages[id.0 as usize].insert(s.page().index());
            }
            None => o.cache_samples += 1,
        }
    }
    for (o, p) in objects.iter_mut().zip(&pages) {
        o.external_pages = p.len() as u64;
    }
    out.objects = objects;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{MemLevel, ThreadId, VirtAddr, PAGE_SIZE};

    fn sample(addr: u64, level: MemLevel, lat: u64) -> MemSample {
        MemSample {
            time_cycles: 0,
            addr: VirtAddr::new(addr),
            level,
            latency_cycles: lat,
            tlb_miss: false,
            thread: ThreadId(0),
            is_store: false,
        }
    }

    fn tracker() -> AllocTracker {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x10000), 4 * PAGE_SIZE, "a", 0);
        t.on_mmap(VirtAddr::new(0x40000), 2 * PAGE_SIZE, "b", 1);
        t
    }

    #[test]
    fn samples_are_attributed_by_address() {
        let t = tracker();
        let samples = [
            sample(0x10000, MemLevel::Nvm, 1000),
            sample(0x10040, MemLevel::Nvm, 2000),
            sample(0x11000, MemLevel::Dram, 300),
            sample(0x40000, MemLevel::L1, 4),
            sample(0xdead0000, MemLevel::Dram, 200),
        ];
        let m = map_samples(&t, &samples);
        assert_eq!(m.objects[0].nvm_samples, 2);
        assert_eq!(m.objects[0].dram_samples, 1);
        assert_eq!(m.objects[0].nvm_cost_cycles, 3000);
        assert_eq!(m.objects[0].external_pages, 2); // 0x10 and 0x11 pages
        assert_eq!(m.objects[1].cache_samples, 1);
        assert_eq!(m.unmapped_samples, 1);
    }

    #[test]
    fn stores_are_excluded() {
        let t = tracker();
        let mut s = sample(0x10000, MemLevel::Nvm, 1000);
        s.is_store = true;
        let m = map_samples(&t, &[s]);
        assert_eq!(m.store_samples, 1);
        assert_eq!(m.objects[0].total_samples(), 0);
    }

    #[test]
    fn rankings_order_correctly() {
        let t = tracker();
        let samples = [
            sample(0x10000, MemLevel::Nvm, 1000),
            sample(0x40000, MemLevel::Nvm, 1000),
            sample(0x40040, MemLevel::Nvm, 1000),
            sample(0x10040, MemLevel::Dram, 300),
            sample(0x10080, MemLevel::Dram, 300),
        ];
        let m = map_samples(&t, &samples);
        assert_eq!(m.top_by_nvm()[0].id, ObjectId(1));
        assert_eq!(m.top_by_dram()[0].id, ObjectId(0));
        assert_eq!(m.hottest_nvm_object().unwrap().id, ObjectId(1));
        // b: 3 samples / 2 pages; a: 3 samples / 4 pages → b denser.
        assert_eq!(m.by_density()[0].id, ObjectId(1));
        assert_eq!(m.total_external(), 5);
    }

    #[test]
    fn density_handles_zero_len() {
        let mut t = AllocTracker::new();
        t.on_mmap(VirtAddr::new(0x1000), 0, "z", 0);
        let m = map_samples(&t, &[]);
        assert_eq!(m.objects[0].density(), 0.0);
    }
}
