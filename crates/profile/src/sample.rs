//! Memory samples and the PEBS-style sampler.

use tiersim_mem::{AccessKind, AccessOutcome, MemLevel, ThreadId, VirtAddr};

/// One sampled memory access, mirroring a `perf-mem` load sample: the
/// hierarchy level that satisfied it, the virtual address (used for object
/// mapping), and the latency in cycles (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemSample {
    /// Simulated cycle timestamp.
    pub time_cycles: u64,
    /// Sampled virtual address.
    pub addr: VirtAddr,
    /// Hierarchy level that satisfied the access.
    pub level: MemLevel,
    /// Access latency in cycles.
    pub latency_cycles: u64,
    /// Whether a TLB miss (page walk) preceded the access.
    pub tlb_miss: bool,
    /// Logical thread that issued the access.
    pub thread: ThreadId,
    /// `true` for store samples. Like the paper, analyses use loads.
    pub is_store: bool,
}

impl MemSample {
    /// Returns `true` if this sample hit outside the caches (DRAM/NVM).
    pub fn is_external(&self) -> bool {
        self.level.is_external()
    }

    /// The page containing the sampled address.
    pub fn page(&self) -> tiersim_mem::PageNum {
        self.addr.page()
    }
}

/// Periodic memory-access sampler (the simulated `perf-mem`).
///
/// Samples every `period`-th access; a prime period avoids aliasing with
/// power-of-two loop strides, just as real PEBS setups randomize periods.
///
/// # Examples
///
/// ```
/// use tiersim_profile::Sampler;
///
/// let s = Sampler::new(997);
/// assert_eq!(s.period(), 997);
/// assert!(s.samples().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    period: u64,
    countdown: u64,
    enabled: bool,
    samples: Vec<MemSample>,
    observed: u64,
}

impl Sampler {
    /// Creates a sampler recording every `period`-th access.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        Sampler { period, countdown: period, enabled: true, samples: Vec::new(), observed: 0 }
    }

    /// The configured sampling period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Total accesses observed (sampled or not) while enabled.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Enables or disables sampling (e.g. to profile only the region of
    /// interest, as the paper's scripts do).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns `true` if sampling is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observes one completed access; records a sample every `period`-th
    /// observation. Returns `true` if a sample was recorded.
    pub fn observe(
        &mut self,
        kind: AccessKind,
        outcome: &AccessOutcome,
        addr: VirtAddr,
        thread: ThreadId,
        now: u64,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        self.observed += 1;
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.countdown = self.period;
        self.samples.push(MemSample {
            time_cycles: now,
            addr,
            level: outcome.level,
            latency_cycles: outcome.cycles,
            tlb_miss: outcome.tlb_miss,
            thread,
            is_store: kind.is_store(),
        });
        true
    }

    /// Observations until a sample is due: the `until_due()`-th
    /// [`Sampler::observe`] call from now records a sample. Always at
    /// least 1.
    pub fn until_due(&self) -> u64 {
        self.countdown
    }

    /// Observes `n` accesses in bulk, none of which is due for a sample:
    /// exactly equivalent to `n` [`Sampler::observe`] calls that all
    /// return `false`. No-op while disabled (as `observe` is). The
    /// machine's batched run path uses this for the gap between samples.
    ///
    /// # Panics
    ///
    /// Panics if `n >= until_due()` while enabled — the bulk skip would
    /// silently swallow a due sample.
    pub fn observe_gap(&mut self, n: u64) {
        if !self.enabled {
            return;
        }
        assert!(n < self.countdown, "bulk observation would skip a due sample");
        self.observed += n;
        self.countdown -= n;
    }

    /// The samples recorded so far.
    pub fn samples(&self) -> &[MemSample] {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Vec<MemSample> {
        self.samples
    }

    /// Clears recorded samples (period phase is kept).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiersim_mem::{PageNum, Tier};

    fn outcome(level: MemLevel) -> AccessOutcome {
        AccessOutcome {
            page: PageNum::new(1),
            level,
            tier: level.tier().unwrap_or(Tier::Dram),
            cycles: 100,
            tlb_miss: false,
            hint_fault: false,
            hint_scan_time: 0,
        }
    }

    #[test]
    fn samples_every_period() {
        let mut s = Sampler::new(3);
        let o = outcome(MemLevel::Dram);
        let mut recorded = 0;
        for i in 0..9 {
            if s.observe(AccessKind::Load, &o, VirtAddr::new(i), ThreadId(0), i) {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 3);
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.observed(), 9);
        // Every third observation: addresses 2, 5, 8.
        assert_eq!(s.samples()[0].addr, VirtAddr::new(2));
        assert_eq!(s.samples()[1].addr, VirtAddr::new(5));
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let mut s = Sampler::new(1);
        s.set_enabled(false);
        assert!(!s.observe(
            AccessKind::Load,
            &outcome(MemLevel::L1),
            VirtAddr::new(0),
            ThreadId(0),
            0
        ));
        assert!(s.samples().is_empty());
        assert_eq!(s.observed(), 0);
    }

    #[test]
    fn sample_captures_outcome_fields() {
        let mut s = Sampler::new(1);
        let mut o = outcome(MemLevel::Nvm);
        o.tlb_miss = true;
        o.cycles = 4141;
        s.observe(AccessKind::Store, &o, VirtAddr::new(0x5000), ThreadId(7), 99);
        let sm = s.samples()[0];
        assert!(sm.is_external());
        assert!(sm.tlb_miss);
        assert!(sm.is_store);
        assert_eq!(sm.latency_cycles, 4141);
        assert_eq!(sm.thread, ThreadId(7));
        assert_eq!(sm.page(), VirtAddr::new(0x5000).page());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn observe_gap_matches_individual_observes() {
        // Drive one sampler per element and its twin with the batched
        // protocol the machine uses: skip `until_due() - 1` accesses in
        // bulk, then route the due access through `observe`.
        let o = outcome(MemLevel::Dram);
        let mut looped = Sampler::new(7);
        let mut bulk = Sampler::new(7);
        let total: u64 = 100;
        for i in 0..total {
            looped.observe(AccessKind::Load, &o, VirtAddr::new(i), ThreadId(0), i);
        }
        let mut i = 0u64;
        while i < total {
            let gap = (bulk.until_due() - 1).min(total - i - 1);
            bulk.observe_gap(gap);
            i += gap;
            bulk.observe(AccessKind::Load, &o, VirtAddr::new(i), ThreadId(0), i);
            i += 1;
        }
        assert_eq!(bulk.observed(), looped.observed());
        assert_eq!(bulk.until_due(), looped.until_due());
        assert_eq!(bulk.samples(), looped.samples());
        assert_eq!(bulk.samples().len(), (total / 7) as usize);
    }

    #[test]
    fn observe_gap_noop_while_disabled() {
        let mut s = Sampler::new(3);
        s.set_enabled(false);
        s.observe_gap(1_000_000);
        assert_eq!(s.observed(), 0);
        assert_eq!(s.until_due(), 3);
    }

    #[test]
    #[should_panic(expected = "skip a due sample")]
    fn observe_gap_rejects_skipping_a_due_sample() {
        let mut s = Sampler::new(5);
        s.observe_gap(5);
    }
}
