//! Small summary-statistics helpers used by the analyses.

/// Summary statistics of a sample set: the exact quantities the paper's
/// Figure 5 reports (min, 25th/50th/75th percentiles, max, average, and
/// standard deviation).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of values summarized.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes `values`. Returns `None` for an empty input.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        Some(Summary {
            count: v.len(),
            min: v[0],
            p25: percentile_sorted(&v, 0.25),
            p50: percentile_sorted(&v, 0.50),
            p75: percentile_sorted(&v, 0.75),
            max: v[v.len() - 1],
            mean,
            std_dev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0];
        assert_eq!(percentile_sorted(&v, 0.5), 15.0);
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 20.0);
    }

    #[test]
    fn single_value_percentiles() {
        let v = [7.0];
        assert_eq!(percentile_sorted(&v, 0.25), 7.0);
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.min, s.max);
        assert_eq!(s.std_dev, 0.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_percentiles_monotone(mut vals in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let s = Summary::of(&vals).unwrap();
            proptest::prop_assert!(s.min <= s.p25 + 1e-9);
            proptest::prop_assert!(s.p25 <= s.p50 + 1e-9);
            proptest::prop_assert!(s.p50 <= s.p75 + 1e-9);
            proptest::prop_assert!(s.p75 <= s.max + 1e-9);
            proptest::prop_assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }
}
