//! Bounded ring buffer of trace records.
//!
//! Storage is allocated once, up front, at construction; recording into a
//! full buffer overwrites the oldest record and bumps a drop counter, so
//! truncation is always visible in the exported trace.

use crate::event::{TraceEvent, TraceRecord};

/// Fixed-capacity drop-oldest ring of [`TraceRecord`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    slots: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Total records ever offered (also the next sequence number).
    seq: u64,
    /// Records evicted to make room.
    dropped: u64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` records. The backing store is
    /// reserved immediately; recording never allocates again.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer { slots: Vec::with_capacity(capacity), capacity, head: 0, seq: 0, dropped: 0 }
    }

    /// Appends an event at simulated time `now`, evicting the oldest
    /// record (and counting the eviction) when full.
    pub fn record(&mut self, now: u64, event: TraceEvent) {
        let rec = TraceRecord { now, seq: self.seq, event };
        self.seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(rec);
        } else {
            self.slots[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }

    /// Total events ever offered to the ring.
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted (or refused, for a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u64) -> TraceEvent {
        TraceEvent::HintFault { page }
    }

    #[test]
    fn fills_then_drops_oldest() {
        let mut b = TraceBuffer::new(3);
        for i in 0..5 {
            b.record(i * 10, ev(i));
        }
        assert_eq!(b.recorded(), 5);
        assert_eq!(b.dropped(), 2);
        let recs = b.records();
        assert_eq!(recs.len(), 3);
        // Oldest two (seq 0, 1) were evicted; order is oldest-first.
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(recs[0].now, 20);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut b = TraceBuffer::new(8);
        for i in 0..4 {
            b.record(i, ev(i));
        }
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.records().iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut b = TraceBuffer::new(0);
        b.record(1, ev(1));
        b.record(2, ev(2));
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.recorded(), 2);
        assert_eq!(b.dropped(), 2);
    }
}
