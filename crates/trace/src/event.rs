//! The trace event vocabulary.
//!
//! One variant per observable control-loop decision, carrying the numbers
//! a reader needs to reconstruct *why* the decision went that way. Every
//! variant is `Copy` so recording never allocates.

/// Why a promotion candidate was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RejectReason {
    /// Access latency was at or above the hot threshold.
    Threshold,
    /// The promotion token bucket had too few tokens.
    RateLimited,
    /// No free DRAM page (and direct reclaim could not make one).
    NoSpace,
}

impl RejectReason {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Threshold => "threshold",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::NoSpace => "no_space",
        }
    }
}

/// Which fault-injection site fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultSite {
    /// A DRAM allocation was forced to fail transiently.
    DramAlloc,
    /// A page migration was forced to report busy.
    MigrateBusy,
}

impl FaultSite {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DramAlloc => "dram_alloc",
            FaultSite::MigrateBusy => "migrate_busy",
        }
    }
}

/// One observable event in the tiering control loop.
///
/// The variants that mirror a `vmstat` counter (`HintFault`,
/// `PromoteCandidate`, …) are *counter-bearing*: replaying them must
/// reproduce the counter deltas of the run that produced the trace (the
/// conservation property tested in `tiersim-os`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// A NUMA hint fault fired on `page`.
    HintFault {
        /// Faulting page number.
        page: u64,
    },
    /// `page` passed the hot-threshold test and became a candidate.
    PromoteCandidate {
        /// Candidate page number.
        page: u64,
        /// Observed access latency (cycles since last scan touch).
        latency: u64,
    },
    /// `page` was migrated NVM→DRAM.
    PromoteAccept {
        /// Promoted page number.
        page: u64,
    },
    /// `page` was considered and turned away.
    PromoteReject {
        /// Rejected page number.
        page: u64,
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// kswapd demoted `page` DRAM→NVM.
    DemoteKswapd {
        /// Demoted page number.
        page: u64,
    },
    /// Direct reclaim demoted `page` DRAM→NVM.
    DemoteDirect {
        /// Demoted page number.
        page: u64,
    },
    /// A previously promoted page was demoted again (promotion thrash).
    PromoteDemoted {
        /// The thrashed page number.
        page: u64,
    },
    /// A migration of `page` hit a transient failure and will be retried.
    MigrateRetry {
        /// Busy page number.
        page: u64,
    },
    /// A migration of `page` exhausted its retries.
    MigrateFail {
        /// Abandoned page number.
        page: u64,
    },
    /// The promotion threshold controller adjusted its threshold.
    ThresholdAdjust {
        /// Threshold before the adjustment (cycles).
        before: u64,
        /// Threshold after the adjustment (cycles).
        after: u64,
        /// Candidate bytes seen this interval.
        candidate_bytes: u64,
        /// The interval's rate-limit budget in bytes.
        limit_bytes: u64,
    },
    /// The promotion rate limiter granted `bytes`.
    RateLimitConsume {
        /// Bytes consumed from the bucket.
        bytes: u64,
    },
    /// The promotion rate limiter denied a request for `bytes`.
    RateLimitDeny {
        /// Bytes requested.
        bytes: u64,
        /// Whole bytes available in the bucket at denial time.
        available: u64,
    },
    /// A deterministic fault was injected.
    FaultInjected {
        /// Which injection site fired.
        site: FaultSite,
    },
    /// An injected reclaim stall charged `cycles`.
    ReclaimStall {
        /// Stall cost in cycles.
        cycles: u64,
    },
    /// A clean page-cache page was dropped instead of migrated.
    PageCacheDrop {
        /// Dropped page number.
        page: u64,
    },
    /// khugepaged collapsed the 512-page block headed by `page` into one
    /// 2 MiB mapping (the kernel's `thp_collapse_alloc`).
    ThpCollapse {
        /// Head page number of the collapsed block (2 MiB aligned).
        page: u64,
    },
    /// A 2 MiB mapping was split back into 4 KiB pages, e.g. ahead of a
    /// promotion or demotion (the kernel's `thp_split_pmd`).
    ThpSplit {
        /// Head page number of the split block.
        page: u64,
    },
    /// A fault on `page` bulk-mapped `pages` extra pages around it
    /// (fault-around / `MAP_POPULATE`).
    FaultAround {
        /// The page whose fault triggered the bulk mapping.
        page: u64,
        /// Extra pages mapped beyond the faulting one.
        pages: u64,
    },
    /// A journaled sweep cell began an attempt (`tiersim-core`'s crash-safe
    /// sweep runner; cell lifecycle events carry the cell's index in the
    /// sweep, not a page number).
    CellStart {
        /// Cell index within the sweep.
        cell: u64,
        /// 1-based attempt number.
        attempt: u64,
    },
    /// A sweep cell attempt completed and its payload is durable.
    CellDone {
        /// Cell index within the sweep.
        cell: u64,
        /// The attempt that succeeded.
        attempt: u64,
    },
    /// A sweep cell attempt failed and will retry in the next wave.
    CellRetry {
        /// Cell index within the sweep.
        cell: u64,
        /// The attempt that failed.
        attempt: u64,
    },
    /// A sweep cell exhausted its retry budget and left the sweep.
    CellQuarantine {
        /// Cell index within the sweep.
        cell: u64,
        /// The final attempt number.
        attempt: u64,
    },
    /// The parameter tuner opened a successive-halving rung (`tiersim-core`'s
    /// `tune` driver; tuner lifecycle events carry search-space indices,
    /// not page numbers).
    RungStart {
        /// Zero-based rung number within the search.
        rung: u64,
        /// Candidate configurations entering the rung.
        cells: u64,
        /// Simulated-tick budget each candidate runs under.
        budget_ticks: u64,
    },
    /// A tuner cell finished its measurement and was scored.
    CellScored {
        /// Cell index within the tuner's search space.
        cell: u64,
        /// Simulated OS ticks the run took to complete.
        ticks: u64,
        /// Promotion traffic the run generated, in bytes.
        promo_bytes: u64,
    },
    /// The per-workload Pareto front changed: `cell` entered it.
    ParetoUpdate {
        /// Cell index that joined the front.
        cell: u64,
        /// Size of the front after the update.
        front: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case event name used by the exporters and the
    /// metrics registry's per-event counters.
    pub fn name(self) -> &'static str {
        match self {
            TraceEvent::HintFault { .. } => "hint_fault",
            TraceEvent::PromoteCandidate { .. } => "promote_candidate",
            TraceEvent::PromoteAccept { .. } => "promote_accept",
            TraceEvent::PromoteReject { .. } => "promote_reject",
            TraceEvent::DemoteKswapd { .. } => "demote_kswapd",
            TraceEvent::DemoteDirect { .. } => "demote_direct",
            TraceEvent::PromoteDemoted { .. } => "promote_demoted",
            TraceEvent::MigrateRetry { .. } => "migrate_retry",
            TraceEvent::MigrateFail { .. } => "migrate_fail",
            TraceEvent::ThresholdAdjust { .. } => "threshold_adjust",
            TraceEvent::RateLimitConsume { .. } => "rate_limit_consume",
            TraceEvent::RateLimitDeny { .. } => "rate_limit_deny",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::ReclaimStall { .. } => "reclaim_stall",
            TraceEvent::PageCacheDrop { .. } => "page_cache_drop",
            TraceEvent::ThpCollapse { .. } => "thp_collapse",
            TraceEvent::ThpSplit { .. } => "thp_split",
            TraceEvent::FaultAround { .. } => "fault_around",
            TraceEvent::CellStart { .. } => "cell_start",
            TraceEvent::CellDone { .. } => "cell_done",
            TraceEvent::CellRetry { .. } => "cell_retry",
            TraceEvent::CellQuarantine { .. } => "cell_quarantine",
            TraceEvent::RungStart { .. } => "rung_start",
            TraceEvent::CellScored { .. } => "cell_scored",
            TraceEvent::ParetoUpdate { .. } => "pareto_update",
        }
    }
}

/// One recorded event with its simulated timestamp and global sequence
/// number. `seq` counts *every* recorded event, including those later
/// evicted from the ring, so gaps in an exported trace are detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Simulated time in cycles when the event fired.
    pub now: u64,
    /// Zero-based global sequence number.
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(TraceEvent::HintFault { page: 1 }.name(), "hint_fault");
        assert_eq!(
            TraceEvent::PromoteReject { page: 1, reason: RejectReason::RateLimited }.name(),
            "promote_reject"
        );
        assert_eq!(TraceEvent::ThpCollapse { page: 512 }.name(), "thp_collapse");
        assert_eq!(TraceEvent::ThpSplit { page: 512 }.name(), "thp_split");
        assert_eq!(TraceEvent::FaultAround { page: 1, pages: 15 }.name(), "fault_around");
        assert_eq!(RejectReason::NoSpace.name(), "no_space");
        assert_eq!(FaultSite::MigrateBusy.name(), "migrate_busy");
    }
}
