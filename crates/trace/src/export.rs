//! Trace exporters: JSONL (one flat object per line) and CSV.
//!
//! Both formats are emitted by hand — the schema is small, flat, and
//! fixed, and hand emission keeps the crate dependency-free so the
//! `xtask trace-check` validator can mirror it without pulling a JSON
//! parser into the offline build.
//!
//! JSONL layout (see DESIGN.md §11):
//! - one line per surviving [`TraceRecord`], keys `t`, `seq`, `event`,
//!   plus the event's own fields;
//! - one `"event":"metrics_snapshot"` line per interval snapshot;
//! - a final `"event":"trace_summary"` line carrying `recorded` and
//!   `dropped`, so truncation by the ring is never silent.

use crate::event::{TraceEvent, TraceRecord};
use crate::state::TraceLog;

/// Serializes `log` as JSON Lines.
pub fn to_jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    let mut last_now = 0;
    for rec in &log.records {
        push_record_json(&mut out, rec);
        last_now = rec.now;
    }
    let mut seq = log.recorded;
    for snap in &log.snapshots {
        out.push_str(&format!(
            "{{\"t\":{},\"seq\":{},\"event\":\"metrics_snapshot\",\"metrics\":{{",
            snap.now, seq
        ));
        for (i, (name, value)) in snap.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("}}\n");
        last_now = last_now.max(snap.now);
        seq += 1;
    }
    out.push_str(&format!(
        "{{\"t\":{},\"seq\":{},\"event\":\"trace_summary\",\"recorded\":{},\"dropped\":{}}}\n",
        last_now, seq, log.recorded, log.dropped
    ));
    out
}

fn push_record_json(out: &mut String, rec: &TraceRecord) {
    out.push_str(&format!(
        "{{\"t\":{},\"seq\":{},\"event\":\"{}\"",
        rec.now,
        rec.seq,
        rec.event.name()
    ));
    match rec.event {
        TraceEvent::HintFault { page }
        | TraceEvent::PromoteAccept { page }
        | TraceEvent::DemoteKswapd { page }
        | TraceEvent::DemoteDirect { page }
        | TraceEvent::PromoteDemoted { page }
        | TraceEvent::MigrateRetry { page }
        | TraceEvent::MigrateFail { page }
        | TraceEvent::PageCacheDrop { page }
        | TraceEvent::ThpCollapse { page }
        | TraceEvent::ThpSplit { page } => {
            out.push_str(&format!(",\"page\":{page}"));
        }
        TraceEvent::FaultAround { page, pages } => {
            out.push_str(&format!(",\"page\":{page},\"pages\":{pages}"));
        }
        TraceEvent::PromoteCandidate { page, latency } => {
            out.push_str(&format!(",\"page\":{page},\"latency\":{latency}"));
        }
        TraceEvent::PromoteReject { page, reason } => {
            out.push_str(&format!(",\"page\":{page},\"reason\":\"{}\"", reason.name()));
        }
        TraceEvent::ThresholdAdjust { before, after, candidate_bytes, limit_bytes } => {
            out.push_str(&format!(
                ",\"before\":{before},\"after\":{after},\"candidate_bytes\":{candidate_bytes},\"limit_bytes\":{limit_bytes}"
            ));
        }
        TraceEvent::RateLimitConsume { bytes } => {
            out.push_str(&format!(",\"bytes\":{bytes}"));
        }
        TraceEvent::RateLimitDeny { bytes, available } => {
            out.push_str(&format!(",\"bytes\":{bytes},\"available\":{available}"));
        }
        TraceEvent::FaultInjected { site } => {
            out.push_str(&format!(",\"site\":\"{}\"", site.name()));
        }
        TraceEvent::ReclaimStall { cycles } => {
            out.push_str(&format!(",\"cycles\":{cycles}"));
        }
        TraceEvent::CellStart { cell, attempt }
        | TraceEvent::CellDone { cell, attempt }
        | TraceEvent::CellRetry { cell, attempt }
        | TraceEvent::CellQuarantine { cell, attempt } => {
            out.push_str(&format!(",\"cell\":{cell},\"attempt\":{attempt}"));
        }
        TraceEvent::RungStart { rung, cells, budget_ticks } => {
            out.push_str(&format!(
                ",\"rung\":{rung},\"cells\":{cells},\"budget_ticks\":{budget_ticks}"
            ));
        }
        TraceEvent::CellScored { cell, ticks, promo_bytes } => {
            out.push_str(&format!(
                ",\"cell\":{cell},\"ticks\":{ticks},\"promo_bytes\":{promo_bytes}"
            ));
        }
        TraceEvent::ParetoUpdate { cell, front } => {
            out.push_str(&format!(",\"cell\":{cell},\"front\":{front}"));
        }
    }
    out.push_str("}\n");
}

/// CSV column header, shared by the exporter and its consumers. The
/// trailing `recorded`/`dropped` columns are only populated by the final
/// `trace_summary` row.
pub const CSV_HEADER: &str =
    "t,seq,event,page,latency,reason,before,after,candidate_bytes,limit_bytes,bytes,available,site,cycles,cell,attempt,pages,rung,cells,budget_ticks,ticks,promo_bytes,front,recorded,dropped";

/// Serializes `log` as CSV with [`CSV_HEADER`] columns. Cells that do
/// not apply to an event are left empty.
pub fn to_csv(log: &TraceLog) -> String {
    let mut out = String::new();
    out.push_str(CSV_HEADER);
    out.push('\n');
    let mut last_now = 0;
    for rec in &log.records {
        push_record_csv(&mut out, rec);
        last_now = rec.now;
    }
    out.push_str(&format!(
        "{},{},trace_summary,,,,,,,,,,,,,,,,,,,,,{},{}\n",
        last_now, log.recorded, log.recorded, log.dropped
    ));
    out
}

fn push_record_csv(out: &mut String, rec: &TraceRecord) {
    // Columns: page, latency, reason, before, after, candidate_bytes,
    // limit_bytes, bytes, available, site, cycles, cell, attempt, pages,
    // rung, cells, budget_ticks, ticks, promo_bytes, front, recorded,
    // dropped.
    let mut cells: [String; 22] = Default::default();
    match rec.event {
        TraceEvent::HintFault { page }
        | TraceEvent::PromoteAccept { page }
        | TraceEvent::DemoteKswapd { page }
        | TraceEvent::DemoteDirect { page }
        | TraceEvent::PromoteDemoted { page }
        | TraceEvent::MigrateRetry { page }
        | TraceEvent::MigrateFail { page }
        | TraceEvent::PageCacheDrop { page }
        | TraceEvent::ThpCollapse { page }
        | TraceEvent::ThpSplit { page } => {
            cells[0] = page.to_string();
        }
        TraceEvent::FaultAround { page, pages } => {
            cells[0] = page.to_string();
            cells[13] = pages.to_string();
        }
        TraceEvent::PromoteCandidate { page, latency } => {
            cells[0] = page.to_string();
            cells[1] = latency.to_string();
        }
        TraceEvent::PromoteReject { page, reason } => {
            cells[0] = page.to_string();
            cells[2] = reason.name().to_string();
        }
        TraceEvent::ThresholdAdjust { before, after, candidate_bytes, limit_bytes } => {
            cells[3] = before.to_string();
            cells[4] = after.to_string();
            cells[5] = candidate_bytes.to_string();
            cells[6] = limit_bytes.to_string();
        }
        TraceEvent::RateLimitConsume { bytes } => {
            cells[7] = bytes.to_string();
        }
        TraceEvent::RateLimitDeny { bytes, available } => {
            cells[7] = bytes.to_string();
            cells[8] = available.to_string();
        }
        TraceEvent::FaultInjected { site } => {
            cells[9] = site.name().to_string();
        }
        TraceEvent::ReclaimStall { cycles } => {
            cells[10] = cycles.to_string();
        }
        TraceEvent::CellStart { cell, attempt }
        | TraceEvent::CellDone { cell, attempt }
        | TraceEvent::CellRetry { cell, attempt }
        | TraceEvent::CellQuarantine { cell, attempt } => {
            cells[11] = cell.to_string();
            cells[12] = attempt.to_string();
        }
        TraceEvent::RungStart { rung, cells: in_rung, budget_ticks } => {
            cells[14] = rung.to_string();
            cells[15] = in_rung.to_string();
            cells[16] = budget_ticks.to_string();
        }
        TraceEvent::CellScored { cell, ticks, promo_bytes } => {
            cells[11] = cell.to_string();
            cells[17] = ticks.to_string();
            cells[18] = promo_bytes.to_string();
        }
        TraceEvent::ParetoUpdate { cell, front } => {
            cells[11] = cell.to_string();
            cells[19] = front.to_string();
        }
    }
    out.push_str(&format!("{},{},{},{}\n", rec.now, rec.seq, rec.event.name(), cells.join(",")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultSite, RejectReason};
    use crate::state::{TraceConfig, TraceState};

    fn sample_log() -> TraceLog {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(16));
        t.set_now(10);
        t.record(TraceEvent::HintFault { page: 7 });
        t.record(TraceEvent::PromoteCandidate { page: 7, latency: 123 });
        t.record(TraceEvent::PromoteReject { page: 7, reason: RejectReason::RateLimited });
        t.record(TraceEvent::RateLimitDeny { bytes: 4096, available: 100 });
        t.set_now(20);
        t.record(TraceEvent::ThresholdAdjust {
            before: 1000,
            after: 800,
            candidate_bytes: 8192,
            limit_bytes: 4096,
        });
        t.record(TraceEvent::FaultInjected { site: FaultSite::DramAlloc });
        t.record(TraceEvent::ReclaimStall { cycles: 555 });
        t.set_gauge("threshold_cycles", 800);
        t.snapshot_metrics();
        t.log()
    }

    #[test]
    fn jsonl_lines_are_flat_objects_with_required_keys() {
        let text = to_jsonl(&sample_log());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7 + 1 + 1, "7 records + metrics snapshot + summary");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            for key in ["\"t\":", "\"seq\":", "\"event\":\""] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        assert!(lines[2].contains("\"reason\":\"rate_limited\""), "{}", lines[2]);
        assert!(lines[3].contains("\"bytes\":4096,\"available\":100"), "{}", lines[3]);
        assert!(lines[4].contains("\"before\":1000,\"after\":800"), "{}", lines[4]);
        assert!(lines[7].contains("\"metrics\":{"), "{}", lines[7]);
        assert!(lines[7].contains("\"threshold_cycles\":800"), "{}", lines[7]);
        let summary = lines.last().unwrap();
        assert!(summary.contains("\"event\":\"trace_summary\""), "{summary}");
        assert!(summary.contains("\"recorded\":7,\"dropped\":0"), "{summary}");
    }

    #[test]
    fn jsonl_summary_reports_drops() {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(2));
        for page in 0..5 {
            t.record(TraceEvent::HintFault { page });
        }
        let text = to_jsonl(&t.log());
        assert!(text.contains("\"recorded\":5,\"dropped\":3"), "{text}");
    }

    #[test]
    fn csv_has_fixed_width_rows_and_summary() {
        let text = to_csv(&sample_log());
        let lines: Vec<&str> = text.lines().collect();
        let width = CSV_HEADER.split(',').count();
        assert_eq!(lines[0], CSV_HEADER);
        for line in &lines {
            assert_eq!(line.split(',').count(), width, "{line}");
        }
        assert!(lines[1].starts_with("10,0,hint_fault,7,"), "{}", lines[1]);
        let summary = lines.last().unwrap();
        assert!(summary.contains("trace_summary"), "{summary}");
        assert!(summary.ends_with(",7,0"), "{summary}");
    }

    #[test]
    fn cell_lifecycle_events_export_cell_and_attempt_fields() {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(16));
        t.record(TraceEvent::CellStart { cell: 3, attempt: 1 });
        t.record(TraceEvent::CellRetry { cell: 3, attempt: 1 });
        t.record(TraceEvent::CellStart { cell: 3, attempt: 2 });
        t.record(TraceEvent::CellDone { cell: 3, attempt: 2 });
        t.record(TraceEvent::CellQuarantine { cell: 5, attempt: 3 });
        let log = t.log();
        let jsonl = to_jsonl(&log);
        assert!(jsonl.contains("\"event\":\"cell_start\",\"cell\":3,\"attempt\":1"), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"cell_done\",\"cell\":3,\"attempt\":2"), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"cell_retry\""), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"cell_quarantine\",\"cell\":5"), "{jsonl}");
        let csv = to_csv(&log);
        let width = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), width, "{line}");
        }
        assert!(csv.lines().any(|l| l.contains("cell_quarantine") && l.contains(",5,3,")), "{csv}");
    }

    #[test]
    fn thp_and_fault_around_events_export_their_fields() {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(16));
        t.record(TraceEvent::ThpCollapse { page: 512 });
        t.record(TraceEvent::ThpSplit { page: 512 });
        t.record(TraceEvent::FaultAround { page: 9, pages: 15 });
        let log = t.log();
        let jsonl = to_jsonl(&log);
        assert!(jsonl.contains("\"event\":\"thp_collapse\",\"page\":512"), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"thp_split\",\"page\":512"), "{jsonl}");
        assert!(jsonl.contains("\"event\":\"fault_around\",\"page\":9,\"pages\":15"), "{jsonl}");
        let csv = to_csv(&log);
        let width = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), width, "{line}");
        }
        let pages_col = CSV_HEADER.split(',').position(|c| c == "pages").unwrap();
        assert!(
            csv.lines()
                .any(|l| l.contains("fault_around") && l.split(',').nth(pages_col) == Some("15")),
            "{csv}"
        );
    }

    #[test]
    fn tuner_lifecycle_events_export_their_fields() {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(16));
        t.record(TraceEvent::RungStart { rung: 0, cells: 216, budget_ticks: 50_000 });
        t.record(TraceEvent::CellScored { cell: 42, ticks: 1234, promo_bytes: 8192 });
        t.record(TraceEvent::ParetoUpdate { cell: 42, front: 3 });
        let log = t.log();
        let jsonl = to_jsonl(&log);
        assert!(
            jsonl.contains(
                "\"event\":\"rung_start\",\"rung\":0,\"cells\":216,\"budget_ticks\":50000"
            ),
            "{jsonl}"
        );
        assert!(
            jsonl.contains(
                "\"event\":\"cell_scored\",\"cell\":42,\"ticks\":1234,\"promo_bytes\":8192"
            ),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"event\":\"pareto_update\",\"cell\":42,\"front\":3"), "{jsonl}");
        let csv = to_csv(&log);
        let width = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), width, "{line}");
        }
        let ticks_col = CSV_HEADER.split(',').position(|c| c == "ticks").unwrap();
        assert!(
            csv.lines()
                .any(|l| l.contains("cell_scored") && l.split(',').nth(ticks_col) == Some("1234")),
            "{csv}"
        );
    }

    #[test]
    fn empty_log_exports_just_the_summary() {
        let log = TraceLog::default();
        let jsonl = to_jsonl(&log);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"recorded\":0,\"dropped\":0"));
        assert_eq!(to_csv(&log).lines().count(), 2);
    }
}
