//! # tiersim-trace — deterministic event tracing and metrics
//!
//! The observability layer the paper's methodology implies: where the
//! authors read `vmstat` deltas and PEBS streams to explain AutoNUMA's
//! behaviour, tiersim records every control-loop decision — hint faults,
//! promotion accept/reject (with the reason), demotions, migration
//! retries, threshold adjustments with before/after values, rate-limiter
//! grants/denials, injected faults — into a bounded, deterministic ring.
//!
//! Design rules (DESIGN.md §11):
//!
//! - **Cheap when off.** [`TraceState`] caches its `enabled` flag; every
//!   hook is one branch and zero allocations when tracing is disabled,
//!   the same pattern as `tiersim-mem`'s fault injector.
//! - **Bounded, never silent.** The ring drops oldest on overflow and
//!   counts every eviction; exporters always emit a `trace_summary`
//!   carrying `recorded`/`dropped`.
//! - **Deterministic.** Events are stamped with simulated cycles fed by
//!   the callers, never wall time; per-run recording is single-threaded
//!   inside one `Machine`, so traces are byte-identical across `--jobs`.
//!
//! ```
//! use tiersim_trace::{to_jsonl, TraceConfig, TraceEvent, TraceState};
//!
//! let mut trace = TraceState::new(TraceConfig::on());
//! trace.set_now(100);
//! trace.record(TraceEvent::HintFault { page: 42 });
//! let jsonl = to_jsonl(&trace.log());
//! assert!(jsonl.contains("\"event\":\"hint_fault\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod event;
mod export;
mod metrics;
mod state;

pub use buffer::TraceBuffer;
pub use event::{FaultSite, RejectReason, TraceEvent, TraceRecord};
pub use export::{to_csv, to_jsonl, CSV_HEADER};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use state::{TraceConfig, TraceLog, TraceState, DEFAULT_TRACE_CAPACITY};
