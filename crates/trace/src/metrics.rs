//! Lightweight metrics registry: monotonic counters and gauges, with
//! per-interval snapshots.
//!
//! Storage is plain sorted-on-demand vectors keyed by `&'static str`, so
//! registration order never reaches the exported output and no hashing is
//! involved — snapshots are byte-stable across runs.

/// One interval snapshot of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsSnapshot {
    /// Simulated time in cycles when the snapshot was taken.
    pub now: u64,
    /// `(name, value)` pairs, sorted by name.
    pub values: Vec<(&'static str, u64)>,
}

/// Monotonic counters plus last-value gauges, snapshotted on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    snapshots: Vec<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to the counter `name`, registering it at zero first if
    /// this is its first use.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name, by)),
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Current value of a gauge (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Captures every counter and gauge into a snapshot at simulated
    /// time `now`, sorted by metric name.
    pub fn snapshot(&mut self, now: u64) {
        let mut values: Vec<(&'static str, u64)> =
            self.counters.iter().chain(self.gauges.iter()).copied().collect();
        values.sort_unstable();
        self.snapshots.push(MetricsSnapshot { now, values });
    }

    /// The snapshots taken so far, in order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.inc("promote_accept", 1);
        m.inc("promote_accept", 2);
        m.set_gauge("threshold_cycles", 100);
        m.set_gauge("threshold_cycles", 80);
        assert_eq!(m.counter("promote_accept"), 3);
        assert_eq!(m.gauge("threshold_cycles"), 80);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("never"), 0);
    }

    #[test]
    fn snapshots_are_name_sorted_regardless_of_registration_order() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("z_gauge", 9);
        m.inc("a_counter", 1);
        m.snapshot(42);
        m.inc("a_counter", 1);
        m.snapshot(84);
        let snaps = m.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].now, 42);
        assert_eq!(snaps[0].values, vec![("a_counter", 1), ("z_gauge", 9)]);
        assert_eq!(snaps[1].values, vec![("a_counter", 2), ("z_gauge", 9)]);
    }
}
