//! The per-run trace recorder: configuration, live state, and the
//! extracted log.
//!
//! Mirrors the fault-injection pattern (`tiersim-mem::fault`): the state
//! caches an `enabled` flag at construction so every hook is a single
//! predictable branch when tracing is off, and nothing is allocated
//! beyond the one up-front ring reservation when it is on.

use crate::buffer::TraceBuffer;
use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Default ring capacity: enough for the smoke configs' full event
/// streams without eviction, small enough to stay cache-friendly.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Trace settings threaded from the experiment config down to the
/// memory system that owns the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceConfig {
    /// Whether events are recorded at all.
    pub enabled: bool,
    /// Ring capacity in records. Zero is legal: every event is counted
    /// as dropped, which still proves the instrumentation fired.
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default): hooks cost one branch.
    pub fn off() -> TraceConfig {
        TraceConfig { enabled: false, capacity: 0 }
    }

    /// Tracing enabled with [`DEFAULT_TRACE_CAPACITY`].
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true, capacity: DEFAULT_TRACE_CAPACITY }
    }

    /// Tracing enabled with an explicit ring capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> TraceConfig {
        self.capacity = capacity;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::off()
    }
}

/// The extracted, immutable result of a traced run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceLog {
    /// Surviving records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Total events offered to the ring (including evicted ones).
    pub recorded: u64,
    /// Events evicted to make room — nonzero means the ring was too
    /// small for the run and `records` is a suffix of the true stream.
    pub dropped: u64,
    /// Per-interval metrics snapshots.
    pub snapshots: Vec<MetricsSnapshot>,
}

impl TraceLog {
    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0 && self.snapshots.is_empty()
    }
}

/// Live recorder owned by the memory system (next to `FaultState`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceState {
    cfg: TraceConfig,
    /// Cached so the disabled path is a single branch with no loads
    /// through `cfg`.
    enabled: bool,
    /// Simulated clock, fed monotonically by the callers.
    now: u64,
    buf: TraceBuffer,
    metrics: MetricsRegistry,
}

impl TraceState {
    /// Builds the recorder; the ring is reserved here, once, and only
    /// when tracing is enabled.
    pub fn new(cfg: TraceConfig) -> TraceState {
        let capacity = if cfg.enabled { cfg.capacity } else { 0 };
        TraceState {
            cfg,
            enabled: cfg.enabled,
            now: 0,
            buf: TraceBuffer::new(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The settings this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Advances the recorder's simulated clock; time never goes
    /// backwards even if callers hand in stale timestamps.
    pub fn set_now(&mut self, now: u64) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Records `event` at the current simulated time. A no-op costing
    /// one branch when tracing is disabled.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.buf.record(self.now, event);
        self.metrics.inc(event.name(), 1);
    }

    /// Sets a gauge in the metrics registry (no-op when disabled).
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.set_gauge(name, value);
    }

    /// Takes a metrics snapshot at the current simulated time (no-op
    /// when disabled).
    pub fn snapshot_metrics(&mut self) {
        if !self.enabled {
            return;
        }
        self.metrics.snapshot(self.now);
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Surviving records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf.records()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.buf.dropped()
    }

    /// Extracts the immutable log of everything recorded so far.
    pub fn log(&self) -> TraceLog {
        TraceLog {
            records: self.buf.records(),
            recorded: self.buf.recorded(),
            dropped: self.buf.dropped(),
            snapshots: self.metrics.snapshots().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_state_records_nothing() {
        let mut t = TraceState::new(TraceConfig::off());
        assert!(!t.enabled());
        t.set_now(100);
        t.record(TraceEvent::HintFault { page: 1 });
        t.set_gauge("g", 5);
        t.snapshot_metrics();
        let log = t.log();
        assert!(log.is_empty());
        assert_eq!(log.recorded, 0);
        assert_eq!(log.dropped, 0);
        assert!(log.snapshots.is_empty());
    }

    #[test]
    fn enabled_state_stamps_monotonic_time() {
        let mut t = TraceState::new(TraceConfig::on());
        t.set_now(50);
        t.record(TraceEvent::HintFault { page: 1 });
        t.set_now(40); // stale: must not rewind
        t.record(TraceEvent::PromoteAccept { page: 1 });
        let log = t.log();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[0].now, 50);
        assert_eq!(log.records[1].now, 50);
        assert_eq!(log.records[1].seq, 1);
        assert_eq!(t.metrics().counter("hint_fault"), 1);
        assert_eq!(t.metrics().counter("promote_accept"), 1);
    }

    #[test]
    fn gauges_and_snapshots_flow_into_the_log() {
        let mut t = TraceState::new(TraceConfig::on().with_capacity(4));
        t.set_now(10);
        t.set_gauge("threshold_cycles", 1000);
        t.snapshot_metrics();
        let log = t.log();
        assert_eq!(log.snapshots.len(), 1);
        assert_eq!(log.snapshots[0].now, 10);
        assert_eq!(log.snapshots[0].values, vec![("threshold_cycles", 1000)]);
    }

    #[test]
    fn default_config_is_off() {
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        assert!(TraceConfig::on().enabled);
        assert_eq!(TraceConfig::on().with_capacity(7).capacity, 7);
    }
}
