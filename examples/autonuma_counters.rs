//! Watch AutoNUMA work over time, the way the paper reads `numastat` and
//! `vmstat` once per second (Figures 9 and 10).
//!
//! ```text
//! cargo run --release --example autonuma_counters
//! ```

use tiersim::core::{run_workload, Dataset, Kernel, MachineConfig, TimelineOps, WorkloadConfig};
use tiersim::mem::Tier;
use tiersim::policy::TieringMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::new(Kernel::Bc, Dataset::Kron).scale(14).trials(2);
    let machine = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
    println!("running {} and polling counters...", workload.name());
    let report = run_workload(machine, workload)?;

    let demotions = report.timeline.counter_deltas(|c| c.pgdemote_kswapd + c.pgdemote_direct);
    let promotions = report.timeline.counter_deltas(|c| c.pgpromote_success);

    println!(
        "\n{:>8}  {:>9} {:>9}  {:>8} {:>8}  {:>5}",
        "t(s)", "DRAM(MB)", "NVM(MB)", "demote", "promote", "CPU%"
    );
    for ((snap, (_, d)), (_, p)) in report.timeline.iter().zip(&demotions).zip(&promotions) {
        println!(
            "{:>8.4}  {:>9.1} {:>9.1}  {:>8} {:>8}  {:>4.0}%",
            snap.time_secs,
            snap.numastat.used_bytes(Tier::Dram) as f64 / (1 << 20) as f64,
            snap.numastat.used_bytes(Tier::Nvm) as f64 / (1 << 20) as f64,
            d,
            p,
            snap.cpu_util * 100.0,
        );
    }

    let c = report.counters;
    println!("\nfinal counters (cumulative, like vmstat since boot):");
    println!("  numa_hint_faults    {:>8}", c.numa_hint_faults);
    println!("  pgpromote_candidate {:>8}", c.pgpromote_candidate);
    println!("  pgpromote_success   {:>8}", c.pgpromote_success);
    println!("  pgpromote_demoted   {:>8}", c.pgpromote_demoted);
    println!("  pgdemote_kswapd     {:>8}", c.pgdemote_kswapd);
    println!("  pgdemote_direct     {:>8}", c.pgdemote_direct);
    println!("  page_cache_filled   {:>8}", c.page_cache_filled);
    println!("  page_cache_dropped  {:>8}", c.page_cache_dropped);
    Ok(())
}
