//! The paper's Figure 2 methodology, end to end: sample memory accesses,
//! intercept allocations, and map samples to objects — then print the
//! object-level view that motivates §7.
//!
//! ```text
//! cargo run --release --example characterize_workload
//! ```

use tiersim::core::{run_workload, Dataset, Kernel, MachineConfig, WorkloadConfig};
use tiersim::mem::Tier;
use tiersim::policy::TieringMode;
use tiersim::profile::{top_objects, two_touch_reuse, TouchHistogram};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::new(Kernel::Bc, Dataset::Kron).scale(14).trials(2);
    let machine = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
    let freq = machine.mem.freq_hz;
    println!("profiling {} with AutoNUMA tiering...", workload.name());
    let report = run_workload(machine, workload)?;

    // Step 1+2 happened during the run: samples + the allocation log.
    println!(
        "\ncollected {} samples and {} tracked allocations",
        report.samples.len(),
        report.tracker.len()
    );

    // Step 3: the sample→object join.
    let mapped = report.mapped();
    println!("\ntop objects by NVM samples (paper Fig. 6b):");
    for row in top_objects(&mapped, Tier::Nvm, 5) {
        println!(
            "  {:<20} {:>8} bytes  {:>5} samples  {:>5.1}% of NVM",
            row.site,
            row.len,
            row.samples,
            row.share * 100.0
        );
    }

    // Per-page touch counts (paper Fig. 4): single-touch pages dominate.
    let touches = TouchHistogram::of(&report.samples);
    let (one, two, three) = touches.access_fractions();
    println!(
        "\nexternal accesses by page touch count: 1× {:.1}%, 2× {:.1}%, 3+× {:.1}%",
        one * 100.0,
        two * 100.0,
        three * 100.0
    );

    // Reuse intervals of 2-touch pages on the hottest NVM object (Fig. 5).
    if let Some(hot) = mapped.hottest_nvm_object() {
        let rec = report.tracker.record(hot.id).expect("tracked");
        let reuse = two_touch_reuse(&report.samples, rec.addr, rec.len, freq);
        println!(
            "\nhottest NVM object is `{}`: {} two-touch pages, promoted fraction {:.1}%",
            hot.site,
            reuse.pages_analyzed,
            reuse.promoted_fraction * 100.0
        );
        if let Some(s) = reuse.intervals_secs {
            println!(
                "  reuse intervals (s): min {:.4} / p50 {:.4} / max {:.4} (std {:.4})",
                s.min, s.p50, s.max, s.std_dev
            );
        }
    }
    Ok(())
}
