//! Fault injection: run a workload under a seeded `FaultPlan` and watch
//! the run complete in degraded mode instead of dying.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use tiersim::core::{
    run_workload, Dataset, FaultConfig, Kernel, MachineConfig, WorkloadConfig, RATE_ONE,
};
use tiersim::policy::TieringMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(12).trials(2);
    let plan = FaultConfig {
        seed: 42,
        dram_alloc_fail_per_64k: RATE_ONE / 16, // ~6% of DRAM allocations fail transiently
        migrate_busy_per_64k: RATE_ONE / 2,     // 50% of migration attempts hit EBUSY
        reclaim_stall_per_64k: RATE_ONE / 8,    // ~12% of reclaim passes stall
        reclaim_stall_cycles: 10_000,
        ..FaultConfig::none()
    };
    let mut cfg = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma)
        .with_fault(plan);
    cfg.os.migrate_max_retries = 1;

    let faulty = run_workload(cfg, workload)?;
    let clean = run_workload(
        MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma),
        workload,
    )?;

    println!("run under injected faults (seed {}):", faulty.workload.seed);
    println!(
        "  completed:        {:.4}s total (clean run: {:.4}s)",
        faulty.total_secs, clean.total_secs
    );
    println!("  degraded mode:    {}", faulty.ran_degraded());
    println!("  pgmigrate_retry:  {}", faulty.counters.pgmigrate_retry);
    println!("  pgmigrate_fail:   {}", faulty.counters.pgmigrate_fail);
    println!("  alloc transients: {}", faulty.fault_stats.dram_alloc_failures);
    println!("  busy migrations:  {}", faulty.fault_stats.migrate_busy_failures);
    println!("  reclaim stalls:   {}", faulty.fault_stats.reclaim_stalls);
    println!("\nsummary CSV:");
    faulty.write_summary_csv(std::io::stdout())?;
    Ok(())
}
