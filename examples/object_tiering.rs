//! The paper's §7 proposal in action: profile a workload under AutoNUMA,
//! build the object-level static plan, run again with `mbind`-style
//! bindings, and compare.
//!
//! ```text
//! cargo run --release --example object_tiering
//! ```

use tiersim::core::{
    plan_from_report, run_workload, Dataset, Kernel, MachineConfig, WorkloadConfig,
};
use tiersim::policy::{Placement, TieringMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::new(Kernel::Bc, Dataset::Kron).scale(14).trials(2);
    let base = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);

    println!("1) profiling run under AutoNUMA...");
    let auto = run_workload(base.clone(), workload)?;

    println!("2) planning object placements (rank by samples/byte, pack into DRAM)...");
    let plan = plan_from_report(&auto, &base, false);
    let mut entries: Vec<_> = plan.placement.iter().collect();
    entries.sort_by_key(|&(label, _)| label.to_string());
    for (label, placement) in entries {
        let tier = match placement {
            Placement::Dram => "DRAM",
            Placement::Nvm => "NVM",
            Placement::Split { .. } => "DRAM+NVM (spill)",
        };
        println!("   {label:<22} -> {tier}");
    }
    println!(
        "   committed {:.1} MB of the {:.1} MB budget",
        plan.dram_used as f64 / (1 << 20) as f64,
        plan.dram_budget as f64 / (1 << 20) as f64,
    );

    println!("3) re-running with the static object mapping...");
    let mut static_cfg = base;
    static_cfg.mode = TieringMode::StaticObject(plan);
    let stat = run_workload(static_cfg, workload)?;

    let improvement = 1.0 - stat.total_secs / auto.total_secs;
    println!("\n                AutoNUMA     object-level");
    println!("run time        {:.4}s      {:.4}s", auto.total_secs, stat.total_secs);
    println!("NVM samples     {:<12} {}", auto.nvm_samples(), stat.nvm_samples());
    println!(
        "migrations      {:<12} {}",
        auto.counters.pgmigrate_success, stat.counters.pgmigrate_success
    );
    println!("\nimprovement: {:.1}% (paper reports 21% avg, up to 51%)", improvement * 100.0);
    Ok(())
}
