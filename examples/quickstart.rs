//! Quickstart: run one GAPBS-style workload on the simulated tiered-memory
//! machine and print what the paper's scripts would measure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tiersim::core::{run_workload, Dataset, Kernel, MachineConfig, WorkloadConfig};
use tiersim::mem::Tier;
use tiersim::policy::TieringMode;
use tiersim::profile::LevelDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // bfs_kron at a laptop-friendly scale (the paper uses scale 30).
    let workload = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(14).trials(4);
    let machine = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
    println!(
        "running {} on {} MB DRAM + {} MB NVM (AutoNUMA tiering on)...",
        workload.name(),
        machine.mem.dram_capacity >> 20,
        machine.mem.nvm_capacity >> 20,
    );

    let report = run_workload(machine, workload)?;

    println!("\nphases:");
    println!("  load  (page cache): {:.4}s", report.load_end_secs);
    println!("  build (CSR):        {:.4}s", report.build_end_secs - report.load_end_secs);
    for (i, t) in report.trial_secs.iter().enumerate() {
        println!("  trial {i}:            {t:.4}s");
    }
    println!("  total:              {:.4}s", report.total_secs);

    let levels = LevelDistribution::of(&report.samples);
    println!("\nmemory samples ({} collected):", report.samples.len());
    println!("  outside caches: {:.1}%", levels.external_fraction() * 100.0);
    println!(
        "  of external — DRAM: {:.1}%, NVM: {:.1}%",
        levels.tier_share_of_external(Tier::Dram) * 100.0,
        levels.tier_share_of_external(Tier::Nvm) * 100.0,
    );

    let c = report.counters;
    println!("\nvmstat counters:");
    println!("  pgpromote_success: {}", c.pgpromote_success);
    println!("  pgdemote_kswapd:   {}", c.pgdemote_kswapd);
    println!("  pgdemote_direct:   {}", c.pgdemote_direct);
    println!("  pgalloc_dram/nvm:  {}/{}", c.pgalloc_dram, c.pgalloc_nvm);
    Ok(())
}
