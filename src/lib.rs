//! # tiersim — AutoNUMA memory tiering on graph analytics, reproduced
//!
//! A full-system reproduction of *"Performance Characterization of
//! AutoNUMA Memory Tiering on Graph Analytics"* (IISWC 2022) as a
//! deterministic Rust simulator. The paper's testbed — a Xeon socket with
//! DRAM + Optane NVM, a Linux tiering kernel, PEBS sampling, and the GAPBS
//! workloads — is rebuilt from scratch across six crates, re-exported here
//! as one facade:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`mem`] | `tiersim-mem` | caches, TLB, DRAM/NVM device models, address space |
//! | [`os`] | `tiersim-os` | AutoNUMA tiering v0.8, reclaim, page cache, vmstat |
//! | [`profile`] | `tiersim-profile` | PEBS-style sampler, mmap tracking, object mapping |
//! | [`graph`] | `tiersim-graph` | GAPBS-like generators, builder, BFS/BC/CC/PR/SSSP |
//! | [`policy`] | `tiersim-policy` | the paper's object-level static tiering + baselines |
//! | [`core`] | `tiersim-core` | machine assembly, workload runner, experiments |
//!
//! ## Quickstart
//!
//! ```no_run
//! use tiersim::core::{run_workload, Dataset, Kernel, MachineConfig, WorkloadConfig};
//! use tiersim::policy::TieringMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(14);
//! let machine = MachineConfig::scaled_default(workload.steady_app_bytes(), TieringMode::AutoNuma);
//! let report = run_workload(machine, workload)?;
//! println!("execution time: {:.3}s", report.exec_secs());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and the `tiersim-bench` crate
//! for the per-table/figure reproduction binaries.

#![warn(missing_docs)]

pub use tiersim_core as core;
pub use tiersim_graph as graph;
pub use tiersim_mem as mem;
pub use tiersim_os as os;
pub use tiersim_policy as policy;
pub use tiersim_profile as profile;
