//! tiersim-audit property tests and the double-run determinism check.
//!
//! The property tests drive random small workloads through the full
//! machine (TLB/cache pipeline, AutoNUMA engine, page cache) with audit
//! checkpoints armed on every OS tick, then assert the final audit report
//! is clean. The determinism test runs one seeded experiment twice and
//! requires the serialized reports to be byte-identical — the guarantee
//! the `xtask lint` rules exist to protect.

use proptest::prelude::*;
use tiersim::core::{Dataset, ExperimentConfig, Kernel, Machine, MachineConfig};
use tiersim::mem::{MemBackend, PAGE_SIZE};
use tiersim::policy::TieringMode;

/// Operations the fuzzer drives against the machine.
#[derive(Debug, Clone)]
enum Op {
    /// Load from page `p` of the working region.
    Load(u8),
    /// Store to page `p` of the working region.
    Store(u8),
    /// Unmap the scratch region and map a fresh one.
    Remap,
    /// Read `n` pages through the page cache.
    FileRead(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Load),
        any::<u8>().prop_map(Op::Store),
        any::<u8>().prop_map(|_| Op::Remap),
        any::<u8>().prop_map(Op::FileRead),
    ]
}

/// A small machine with audit checkpoints on every OS tick, so the
/// engine's own `debug_assert!` fires mid-run in addition to the final
/// explicit check below.
fn audited_machine(mode: TieringMode) -> Machine {
    let cfg = MachineConfig::scaled_default(1 << 20, mode).with_audit(1);
    Machine::new(cfg).expect("machine")
}

fn drive(mode: TieringMode, ops: &[Op]) -> Machine {
    let mut m = audited_machine(mode);
    let base = m.mmap(128 * PAGE_SIZE, "fuzz.work");
    let mut scratch = m.mmap(16 * PAGE_SIZE, "fuzz.scratch");
    for op in ops {
        match *op {
            Op::Load(p) => m.load(base + u64::from(p % 128) * PAGE_SIZE, 8),
            Op::Store(p) => m.store(base + u64::from(p % 128) * PAGE_SIZE, 8),
            Op::Remap => {
                m.munmap(scratch);
                scratch = m.mmap(16 * PAGE_SIZE, "fuzz.scratch");
                m.store(scratch, 8);
            }
            Op::FileRead(n) => {
                let _ = m.file_read(u64::from(n % 8 + 1) * PAGE_SIZE);
            }
        }
    }
    m
}

proptest! {
    /// Random workloads under AutoNUMA (faults, hint faults, promotions,
    /// demotions, page-cache churn) leave every audited invariant intact.
    #[test]
    fn random_autonuma_workloads_audit_clean(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let m = drive(TieringMode::AutoNuma, &ops);
        let report = m.audit();
        prop_assert!(
            report.is_clean(),
            "audit found {} violation(s): {:?}",
            report.violations.len(),
            report.violations
        );
        prop_assert!(report.checks > 0);
    }

    /// The same holds with tiering disabled entirely (first-touch): the
    /// invariants are properties of the accounting, not of any policy.
    #[test]
    fn random_first_touch_workloads_audit_clean(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let m = drive(TieringMode::FirstTouch, &ops);
        let report = m.audit();
        prop_assert!(report.is_clean(), "violations: {:?}", report.violations);
    }
}

/// `MachineConfig::with_audit` threads the checkpoint interval through to
/// the OS engine config.
#[test]
fn with_audit_sets_interval() {
    let cfg = MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma).with_audit(32);
    assert_eq!(cfg.os.audit_every_ticks, 32);
    assert_eq!(
        MachineConfig::scaled_default(1 << 20, TieringMode::AutoNuma).os.audit_every_ticks,
        0
    );
}

/// An explicit audit on a fresh machine is clean and walks zero pages.
#[test]
fn fresh_machine_audits_clean() {
    let m = audited_machine(TieringMode::AutoNuma);
    let report = m.audit();
    assert!(report.is_clean());
    assert_eq!(report.pages_walked, 0);
}

fn serialized(report: &tiersim::core::RunReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    report.write_summary_csv(&mut bytes).expect("summary csv");
    report.write_timeline_csv(&mut bytes).expect("timeline csv");
    bytes
}

/// The acceptance determinism check: the same seeded config run twice
/// yields byte-identical serialized reports (summary + timeline CSVs).
#[test]
fn double_run_reports_are_byte_identical() {
    let cfg = ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 2,
        sample_period: 101,
        jobs: 1,
        ..ExperimentConfig::default()
    };
    let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
    let a = cfg.run(w, TieringMode::AutoNuma).expect("run a");
    let b = cfg.run(w, TieringMode::AutoNuma).expect("run b");
    let (bytes_a, bytes_b) = (serialized(&a), serialized(&b));
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "serialized RunReports diverged between identical runs");
}
