//! Smoke tests over every experiment module through the public facade:
//! each paper table/figure builder produces well-formed, internally
//! consistent output at reduced scale.

use tiersim::core::experiments::{AutonumaTrace, Characterization, Comparison, ObjectAnalysis};
use tiersim::core::{Dataset, ExperimentConfig, Kernel};
use tiersim::mem::Tier;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 1,
        sample_period: 101,
        jobs: 1,
        ..ExperimentConfig::default()
    }
}

#[test]
fn characterization_rows_are_consistent() {
    let c = Characterization::run(&cfg()).expect("six workloads run");
    let names: Vec<String> = c.table1().iter().map(|r| r.workload.clone()).collect();
    assert_eq!(names, ["bc_kron", "bc_urand", "bfs_kron", "bfs_urand", "cc_kron", "cc_urand"]);
    for (t1, t2) in c.table1().iter().zip(c.table2()) {
        assert!((0.0..=1.0).contains(&t1.outside_cache));
        if t1.outside_cache > 0.0 {
            assert!((t1.dram_share + t1.nvm_share - 1.0).abs() < 1e-9);
            assert!((t2.dram_cost_share + t2.nvm_cost_share - 1.0).abs() < 1e-9);
        }
    }
    // Fig 3's external fraction must agree with Table 1.
    for (f3, t1) in c.fig3().iter().zip(c.table1()) {
        assert!((f3.dram_frac + f3.nvm_frac - t1.outside_cache).abs() < 1e-9);
    }
    // Table 3: NVM columns dominate DRAM columns where populated.
    for r in c.table3() {
        if let (Some(nh), Some(dh)) = (r.nvm_tlb_hit, r.dram_tlb_hit) {
            assert!(nh > dh, "{}: NVM hit {nh} <= DRAM hit {dh}", r.workload);
        }
    }
}

#[test]
fn object_analysis_works_for_every_paper_workload() {
    for kernel in [Kernel::Bc, Kernel::Bfs, Kernel::Cc] {
        let a = ObjectAnalysis::run_workload(&cfg(), kernel, Dataset::Kron).expect("run");
        // DRAM top objects exist for every workload; shares sum ≤ 1.
        let rows = a.fig6(Tier::Dram, 10);
        assert!(!rows.is_empty(), "{kernel:?}");
        let total: f64 = rows.iter().map(|r| r.share).sum();
        assert!(total <= 1.0 + 1e-9);
        // The allocation timeline never goes negative and ends below peak.
        let tl = a.fig7();
        assert!(tl.points.iter().all(|&(t, _)| t >= 0.0));
        assert!(tl.peak_bytes() >= tl.points.last().map_or(0, |&(_, b)| b));
    }
}

#[test]
fn trace_time_series_are_monotone() {
    let tr = AutonumaTrace::run(&cfg()).expect("trace run");
    let f9 = tr.fig9();
    // Phase-end snapshots can coincide with periodic ones, so the series
    // is non-decreasing rather than strictly increasing.
    assert!(f9.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
    // Counter deltas are non-negative by construction.
    assert!(f9.iter().all(|r| r.cpu_util >= 0.0 && r.cpu_util <= 1.0));
    let f10 = tr.fig10();
    assert!(f10.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
}

#[test]
fn comparison_rows_cover_the_grid_with_spill_variants() {
    let c = Comparison::run(&cfg()).expect("comparison");
    let names: Vec<&str> = c.rows.iter().map(|r| r.workload.as_str()).collect();
    assert_eq!(
        names,
        [
            "bc_kron",
            "bc_urand",
            "bfs_kron",
            "bfs_urand",
            "cc_kron",
            "cc_kron*",
            "cc_urand",
            "cc_urand*"
        ]
    );
    for r in &c.rows {
        assert!(r.autonuma_secs > 0.0);
        assert!(r.static_secs > 0.0);
        assert!(r.workload.ends_with('*') == r.spill);
    }
    // Summary statistics are within the rows' range.
    let best = c.rows.iter().map(|r| r.improvement()).fold(f64::MIN, f64::max);
    assert!((c.max_improvement() - best).abs() < 1e-12);
    assert!(c.row("cc_kron*").is_some());
    assert!(c.row("nonexistent").is_none());
    assert!(c.render().contains("avg improvement"));
}
