//! Integration tests asserting the paper's seven findings qualitatively,
//! at reduced scale, across the whole stack.

use tiersim::core::{Dataset, ExperimentConfig, Kernel, RunReport};
use tiersim::mem::Tier;
use tiersim::policy::TieringMode;
use tiersim::profile::LevelDistribution;

fn config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 13,
        degree: 16,
        trials: 2,
        sample_period: 97,
        jobs: 1,
        ..ExperimentConfig::default()
    }
}

fn bc_kron_report() -> RunReport {
    let cfg = config();
    let w = cfg.workload(Kernel::Bc, Dataset::Kron);
    cfg.run(w, TieringMode::AutoNuma).expect("bc_kron runs")
}

/// Finding 1: external NVM accesses preceded by a TLB miss are several
/// times more expensive than DRAM accesses.
#[test]
fn finding1_nvm_tlb_miss_cost_dominates() {
    let r = bc_kron_report();
    let d = LevelDistribution::of(&r.samples);
    let nvm_miss = d.mean_external_cost(Tier::Nvm, true).expect("NVM TLB-miss samples");
    let dram_hit = d.mean_external_cost(Tier::Dram, false).expect("DRAM TLB-hit samples");
    assert!(
        nvm_miss > 2.5 * dram_hit,
        "NVM+miss ({nvm_miss:.0}) should be ≫ DRAM+hit ({dram_hit:.0})"
    );
    if let Some(dram_miss) = d.mean_external_cost(Tier::Dram, true) {
        assert!(nvm_miss > 1.5 * dram_miss, "NVM+miss should beat DRAM+miss");
    }
    if let Some(nvm_hit) = d.mean_external_cost(Tier::Nvm, false) {
        assert!(nvm_miss > nvm_hit, "TLB miss must add cost on NVM");
    }
}

/// Finding 2: very few objects concentrate the majority of NVM accesses.
#[test]
fn finding2_nvm_accesses_concentrate_in_few_objects() {
    let r = bc_kron_report();
    let mapped = r.mapped();
    let top = tiersim::profile::top_objects(&mapped, Tier::Nvm, 3);
    assert!(!top.is_empty(), "expected NVM samples");
    let top3_share: f64 = top.iter().map(|t| t.share).sum();
    assert!(top3_share > 0.5, "top-3 objects should hold most NVM samples, got {top3_share:.2}");
}

/// Finding 3: pages land in DRAM because space is available (first touch),
/// and spill to NVM once it is not — placement is not hotness-driven.
#[test]
fn finding3_dram_first_allocation() {
    let r = bc_kron_report();
    assert!(r.counters.pgalloc_dram > 0, "early allocations land on DRAM");
    assert!(r.counters.pgalloc_nvm > 0, "under pressure, later allocations must fall back to NVM");
}

/// Finding 4: the hottest NVM object's accesses are scattered, not
/// sequential.
#[test]
fn finding4_hot_object_access_is_random() {
    let r = bc_kron_report();
    let mapped = r.mapped();
    let hot = mapped.hottest_nvm_object().expect("hottest NVM object");
    let rec = r.tracker.record(hot.id).expect("tracked");
    let freq = 2_600_000_000;
    let pattern = tiersim::profile::AccessPattern::of(&r.samples, rec, freq);
    if let Some(randomness) = pattern.randomness() {
        assert!(
            randomness > 0.05,
            "hot-object accesses should be scattered, metric {randomness:.3}"
        );
    }
}

/// Finding 5: reclaim cuts into the OS page cache, freeing DRAM for the
/// application.
#[test]
fn finding5_page_cache_is_reclaimed() {
    let r = bc_kron_report();
    let filled = r.counters.page_cache_filled;
    assert!(filled > 0, "the load phase must populate the page cache");
    // Some page cache was either demoted to NVM or dropped, or pushed out
    // of DRAM: check the final snapshot.
    let last = r.timeline.last().expect("timeline recorded");
    let dram_cache_pages = last.numastat.file_pages[Tier::Dram.index()];
    assert!(
        dram_cache_pages < filled,
        "page cache on DRAM ({dram_cache_pages}) should shrink below the {filled} filled pages"
    );
}

/// Finding 6: promotions are few (single-touch pages starve the two-touch
/// detector) and never rate limited.
#[test]
fn finding6_promotions_are_few_and_under_the_rate_limit() {
    let r = bc_kron_report();
    assert_eq!(r.counters.promo_rate_limited, 0, "rate limit should not bind");
    let resident_pages = r.counters.pgalloc_dram + r.counters.pgalloc_nvm;
    assert!(
        r.counters.pgpromote_success < resident_pages / 2,
        "promotions ({}) should be a small fraction of pages ({resident_pages})",
        r.counters.pgpromote_success
    );
}

/// Finding 7: demotions dominate promotions (paper Fig. 9: "more
/// demotions are performed compared to promotions").
#[test]
fn finding7_demotions_exceed_promotions() {
    let r = bc_kron_report();
    assert!(
        r.counters.pgdemote_total() + r.counters.page_cache_dropped > r.counters.pgpromote_success,
        "demotions {} (+dropped {}) vs promotions {}",
        r.counters.pgdemote_total(),
        r.counters.page_cache_dropped,
        r.counters.pgpromote_success
    );
}
