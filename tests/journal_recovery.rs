//! Crash-recovery contract for the durable sweep journal (DESIGN.md §13):
//!
//! - killing a sweep at **any** journal append and resuming produces
//!   byte-identical final output to an uninterrupted run, with zero
//!   completed cells re-executed (the kill-point property test);
//! - the full `repro_all` suite honors the same contract end to end,
//!   including the `--trace` exports replayed from the journal;
//! - a sweep containing a panicking cell and a stuck cell (the
//!   deterministic tick-budget watchdog) completes with both quarantined
//!   in the degraded-mode summary.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tiersim::core::{run_workload, CoreError, ExperimentConfig, RunError, TraceConfig};
use tiersim::policy::TieringMode;
use tiersim_bench::run_suite_journaled;
use tiersim_core::journal::{
    run_journaled, CellError, CellOutcome, FailureClass, JournalCell, JournalOutcome, KillMode,
    KillSpec, RunnerOptions,
};
use tiersim_core::sweep::SweepAbort;

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch path per invocation — counter-based, never
/// timestamp-based (the wall-clock lint applies to tests too).
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tiersim-recovery-{}-{tag}-{n}.jsonl", std::process::id()))
}

const CELLS: usize = 5;

/// Five deterministic synthetic cells; `execs[i]` counts how many times
/// cell `i`'s body actually ran, across every session sharing the array.
fn synthetic_cells(execs: &Arc<[AtomicU64; CELLS]>) -> Vec<JournalCell> {
    (0..CELLS)
        .map(|i| {
            let execs = Arc::clone(execs);
            JournalCell {
                name: format!("cell-{i}"),
                run: Box::new(move || {
                    execs[i].fetch_add(1, Ordering::SeqCst);
                    Ok(format!("payload-{i}:{}", i * 31 + 7))
                }),
            }
        })
        .collect()
}

/// Canonical bytes for an outcome's user-visible result: per-cell names,
/// payloads, and the final-state stat columns. This is what must be
/// identical between an uninterrupted run and any kill/resume split.
fn final_bytes(outcome: &JournalOutcome) -> String {
    let mut s = String::new();
    for (name, cell) in &outcome.cells {
        match cell {
            CellOutcome::Completed { payload, .. } => {
                s.push_str(&format!("{name} => {payload}\n"));
            }
            CellOutcome::Quarantined { error, .. } => {
                s.push_str(&format!("{name} QUARANTINED: {error}\n"));
            }
        }
    }
    s.push_str(&format!(
        "cells: {} completed, {} retried, {} quarantined\n",
        outcome.stats.completed, outcome.stats.retried, outcome.stats.quarantined
    ));
    s
}

proptest! {
    /// Crash the journal runner at any append (torn or clean, serial or
    /// parallel), resume, and the final output is byte-identical to an
    /// uninterrupted run — with every journaled-complete cell replayed,
    /// never re-executed.
    #[test]
    fn killed_sweep_resumes_byte_identical(
        // A 5-cell clean sweep performs 11 appends: meta + start/done per
        // cell. Every kill point in that range must be recoverable.
        at_append in 1u64..12,
        torn in any::<bool>(),
        jobs in any::<bool>().prop_map(|parallel| if parallel { 4usize } else { 1 }),
    ) {
        // Uninterrupted reference run.
        let clean_execs: Arc<[AtomicU64; CELLS]> = Arc::new(Default::default());
        let clean_path = scratch("clean");
        let clean = run_journaled(
            &clean_path,
            "fp=recovery",
            synthetic_cells(&clean_execs),
            RunnerOptions { jobs, ..Default::default() },
        )
        .expect("uninterrupted run");
        prop_assert_eq!(clean.stats.completed, CELLS as u64);

        // Killed run: dies *instead of* performing append `at_append`.
        let execs: Arc<[AtomicU64; CELLS]> = Arc::new(Default::default());
        let path = scratch("killed");
        let kill = KillSpec { at_append, torn, mode: KillMode::Panic };
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            run_journaled(
                &path,
                "fp=recovery",
                synthetic_cells(&execs),
                RunnerOptions { jobs, kill: Some(kill), ..Default::default() },
            )
        }));
        let payload = aborted.expect_err("armed kill-point must abort the run");
        prop_assert!(payload.is::<SweepAbort>(), "kill-point raises SweepAbort");

        // Resume: completed cells replay, the rest run.
        let resumed = run_journaled(
            &path,
            "fp=recovery",
            synthetic_cells(&execs),
            RunnerOptions { jobs, ..Default::default() },
        )
        .expect("resume");

        prop_assert_eq!(final_bytes(&resumed), final_bytes(&clean));
        prop_assert_eq!(
            resumed.stats.executed + resumed.stats.replayed,
            CELLS as u64,
            "every cell is either replayed or executed on resume"
        );
        // Exactly-once proof: a replayed cell ran exactly once (before
        // the kill) and was never re-executed; a non-replayed cell ran at
        // most twice (its pre-kill attempt never journaled a `done`).
        for (i, (_, cell)) in resumed.cells.iter().enumerate() {
            let runs = execs[i].load(Ordering::SeqCst);
            match cell {
                CellOutcome::Completed { replayed: true, .. } => prop_assert_eq!(
                    runs, 1, "cell {} was replayed yet ran {} times", i, runs
                ),
                CellOutcome::Completed { replayed: false, .. } => prop_assert!(
                    (1..=2).contains(&runs),
                    "cell {} ran {} times across kill+resume", i, runs
                ),
                CellOutcome::Quarantined { .. } => prop_assert!(false, "no cell quarantines"),
            }
        }
        let _ = std::fs::remove_file(&clean_path);
        let _ = std::fs::remove_file(&path);
    }
}

fn suite_config(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        scale: 10,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs,
        trace: TraceConfig::on(),
        tick_budget: 0,
        thp: false,
    }
}

/// The ISSUE acceptance check, end to end: kill `repro_all`'s journaled
/// suite at an injected kill-point, resume, and the assembled output,
/// summary, and trace exports are byte-identical to an uninterrupted run
/// — without re-executing the experiments the journal already completed.
/// The resume leg runs with a different `--jobs` value on purpose: the
/// journal fingerprint excludes worker count.
#[test]
fn killed_and_resumed_repro_suite_is_byte_identical() {
    let clean_path = scratch("suite-clean");
    let clean = run_suite_journaled(&suite_config(2), &clean_path, RunnerOptions::default(), false)
        .expect("uninterrupted suite");
    assert_eq!(clean.exit_code(), 0);
    let clean_stats = *clean.cell_stats().expect("journaled suite has cell stats");
    assert_eq!(clean_stats.completed, 4);

    // Kill before any cell completes (append 2 = the first cell's start)
    // and mid-suite after two cells completed (append 6).
    for (kill_at, expect_replayed) in [(2u64, 0u64), (6, 2)] {
        let path = scratch("suite-killed");
        let kill = KillSpec { at_append: kill_at, torn: false, mode: KillMode::Panic };
        let opts = RunnerOptions { kill: Some(kill), ..Default::default() };
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            run_suite_journaled(&suite_config(2), &path, opts, false)
        }));
        assert!(
            aborted.expect_err("kill-point aborts the suite").is::<SweepAbort>(),
            "kill at append {kill_at} raises SweepAbort"
        );

        let resumed = run_suite_journaled(&suite_config(4), &path, RunnerOptions::default(), false)
            .expect("resumed suite");
        assert_eq!(resumed.output(), clean.output(), "output diverged (kill at {kill_at})");
        assert_eq!(resumed.summary(), clean.summary(), "summary diverged (kill at {kill_at})");
        assert_eq!(
            resumed.trace_exports(),
            clean.trace_exports(),
            "trace exports diverged (kill at {kill_at})"
        );
        let stats = resumed.cell_stats().expect("cell stats");
        assert_eq!(stats.replayed, expect_replayed, "kill at {kill_at}");
        assert_eq!(stats.executed, 4 - expect_replayed, "kill at {kill_at}");
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&clean_path);
}

/// The degraded-mode acceptance check: a sweep containing a panicking
/// cell and a stuck cell (tripping the deterministic tick-budget
/// watchdog inside a real `run_workload`) completes, quarantines both
/// with their failure classes journaled, and the healthy cell still
/// finishes.
#[test]
fn panicking_and_stuck_cells_quarantine_in_degraded_summary() {
    let path = scratch("quarantine");
    let cells = vec![
        JournalCell { name: "healthy".to_string(), run: Box::new(|| Ok("fine".to_string())) },
        JournalCell {
            name: "exploding".to_string(),
            run: Box::new(|| panic!("unmapped address 0xdead")),
        },
        JournalCell {
            name: "runaway".to_string(),
            run: Box::new(|| {
                // A real workload under a one-tick budget: the watchdog
                // fires deterministically long before the run finishes.
                let exp = ExperimentConfig {
                    scale: 10,
                    degree: 8,
                    trials: 1,
                    sample_period: 211,
                    jobs: 1,
                    trace: TraceConfig::off(),
                    tick_budget: 1,
                    thp: false,
                };
                let w = exp.workloads().into_iter().next().expect("workload");
                let mut mc = exp.machine_for(&w, TieringMode::AutoNuma);
                mc.os.kswapd_period_cycles = 1_000;
                match run_workload(mc, w) {
                    Err(e @ CoreError::Run(RunError::Stuck { .. })) => {
                        Err(CellError { class: FailureClass::Stuck, message: e.to_string() })
                    }
                    Err(e) => Err(CellError { class: FailureClass::Error, message: e.to_string() }),
                    Ok(_) => panic!("watchdog should have fired"),
                }
            }),
        },
    ];
    let opts = RunnerOptions { jobs: 2, max_attempts: 2, ..Default::default() };
    let outcome = run_journaled(&path, "fp=degraded", cells, opts).expect("sweep completes");

    assert_eq!(outcome.stats.completed, 1);
    assert_eq!(outcome.stats.quarantined, 2);
    assert_eq!(outcome.stats.executed, 5, "1 + two attempts for each failing cell");
    assert!(
        matches!(&outcome.cells[0].1, CellOutcome::Completed { payload, .. } if payload == "fine")
    );
    let quarantine_error = |idx: usize| match &outcome.cells[idx].1 {
        CellOutcome::Quarantined { error, .. } => error.clone(),
        other => panic!("expected quarantine, got {other:?}"),
    };
    assert!(quarantine_error(1).contains("unmapped address 0xdead"));
    assert!(quarantine_error(2).contains("stuck"), "watchdog error names the stuck condition");

    // Both failure classes are durably journaled for `journal-check`.
    let journal = std::fs::read_to_string(&path).expect("journal exists");
    assert!(journal.contains("\"class\":\"panic\""), "panic class journaled");
    assert!(journal.contains("\"class\":\"stuck\""), "stuck class journaled");
    assert!(journal.contains("\"kind\":\"quarantine\""), "quarantine records journaled");
    let _ = std::fs::remove_file(&path);
}
