//! The parallel-sweep determinism contract (DESIGN.md §10): running the
//! experiment suite on N worker threads must produce the same bytes as
//! running it serially, and audit checkpoints must stay clean either way.
//!
//! These tests run unconditionally — byte-identity holds on any host,
//! including single-core CI runners where the "parallel" pool degrades
//! to one busy worker. (Wall-clock speedup is asserted separately in
//! `crates/bench/tests/sweep_speedup.rs`, where real-time measurement is
//! allowed.)

use tiersim::core::{run_workload, ExperimentConfig, MachineConfig, RunReport, TraceConfig};
use tiersim::policy::TieringMode;
use tiersim_bench::run_repro_suite;
use tiersim_core::experiments::{Characterization, Comparison};
use tiersim_core::sweep;

fn tiny(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        scale: 11,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs,
        trace: TraceConfig::off(),
        tick_budget: 0,
        thp: false,
    }
}

fn serialized(report: &RunReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    report.write_summary_csv(&mut bytes).expect("summary csv");
    report.write_timeline_csv(&mut bytes).expect("timeline csv");
    bytes
}

/// The acceptance check from ISSUE 4: the full `repro_all` suite with
/// `--jobs 4` records byte-identical output (reports + summary) to
/// `--jobs 1`.
#[test]
fn repro_suite_output_is_byte_identical_across_jobs() {
    let serial = run_repro_suite(&tiny(1), false);
    let parallel = run_repro_suite(&tiny(4), false);
    assert!(!serial.output().is_empty());
    assert_eq!(serial.output(), parallel.output(), "suite output diverged between jobs=1 and 4");
    assert_eq!(serial.summary(), parallel.summary());
    assert_eq!(serial.exit_code(), 0);
    assert_eq!(parallel.exit_code(), 0);
}

/// The `--trace` export is part of the determinism contract: the traced
/// suite run records bytewise-identical JSONL and CSV exports whether the
/// suite executes on 1 worker or 4 (ISSUE 5 acceptance).
#[test]
fn trace_export_is_byte_identical_across_jobs() {
    let traced = |jobs: usize| {
        let mut cfg = tiny(jobs);
        cfg.trace = TraceConfig::on();
        run_repro_suite(&cfg, false)
    };
    let serial = traced(1);
    let parallel = traced(4);
    let a = serial.trace_exports().expect("traced suite records exports");
    let b = parallel.trace_exports().expect("traced suite records exports");
    assert!(!a.jsonl.is_empty(), "traced run recorded no events");
    assert_eq!(a.jsonl, b.jsonl, "trace JSONL diverged between jobs=1 and 4");
    assert_eq!(a.csv, b.csv, "trace CSV diverged between jobs=1 and 4");
}

/// Characterization renders and per-report CSVs are bytewise independent
/// of the worker count.
#[test]
fn characterization_reports_match_across_jobs() {
    let a = Characterization::run(&tiny(1)).expect("serial");
    let b = Characterization::run(&tiny(3)).expect("parallel");
    assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(serialized(ra), serialized(rb), "report CSVs diverged");
    }
    assert_eq!(a.render_table1(), b.render_table1());
    assert_eq!(a.render_fig3(), b.render_fig3());
}

/// The Figure 11 comparison (AutoNUMA/static pairs, including spill
/// variants) renders identically at any worker count.
#[test]
fn comparison_rows_match_across_jobs() {
    let a = Comparison::run(&tiny(1)).expect("serial");
    let b = Comparison::run(&tiny(4)).expect("parallel");
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.render(), b.render());
}

/// Audit checkpoints (`OsConfig::audit_every_ticks`) stay clean when the
/// audited runs execute concurrently on the sweep executor, and the
/// audited reports still match the serial bytes.
#[test]
fn audited_runs_stay_clean_under_parallel_sweep() {
    let cfg = tiny(1);
    let run_audited = |jobs: usize| -> Vec<Vec<u8>> {
        let cells: Vec<_> = cfg
            .workloads()
            .into_iter()
            .take(4)
            .map(|w| {
                let mc: MachineConfig = cfg.machine_for(&w, TieringMode::AutoNuma).with_audit(64);
                move || serialized(&run_workload(mc, w).expect("audited run"))
            })
            .collect();
        sweep::run_cells(jobs, cells)
    };
    let serial = run_audited(1);
    let parallel = run_audited(4);
    assert_eq!(serial.len(), 4);
    assert_eq!(serial, parallel, "audited sweeps diverged between jobs=1 and 4");
}
