//! End-to-end pipeline tests spanning all crates.

use tiersim::core::{
    plan_from_report, run_workload, Dataset, ExperimentConfig, Kernel, MachineConfig,
    WorkloadConfig,
};
use tiersim::graph::{bfs, build_sim_csr, reference, BfsParams, KroneckerGenerator};
use tiersim::mem::MemBackend;
use tiersim::policy::TieringMode;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 2,
        sample_period: 101,
        jobs: 1,
        ..ExperimentConfig::default()
    }
}

/// §6.6 sanity check: with AutoNUMA disabled, every migration counter's
/// delta is zero over the whole run.
#[test]
fn autonuma_disabled_counters_stay_zero() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Cc, Dataset::Kron);
    let r = cfg.run(w, TieringMode::FirstTouch).expect("run");
    assert!(r.counters.no_migrations());
    assert_eq!(r.counters.numa_hint_faults, 0);
}

/// The static object mapping performs no migrations either (§7: "no
/// demotions or promotions are performed").
#[test]
fn static_mapping_never_migrates() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
    let base = cfg.machine_for(&w, TieringMode::AutoNuma);
    let auto = run_workload(base.clone(), w).expect("profiling run");
    let plan = plan_from_report(&auto, &base, true);
    let mut static_cfg = base;
    static_cfg.mode = TieringMode::StaticObject(plan);
    let stat = run_workload(static_cfg, w).expect("static run");
    assert!(stat.counters.no_migrations());
}

/// Whole runs are deterministic: identical configs give identical
/// reports, including sample streams and counters.
#[test]
fn runs_are_deterministic() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Bc, Dataset::Urand);
    let a = cfg.run(w, TieringMode::AutoNuma).expect("run a");
    let b = cfg.run(w, TieringMode::AutoNuma).expect("run b");
    assert_eq!(a.total_secs, b.total_secs);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.samples.len(), b.samples.len());
    assert_eq!(a.samples.first(), b.samples.first());
    assert_eq!(a.samples.last(), b.samples.last());
}

/// Graph algorithms produce verified results when run through the *full*
/// machine (OS faults, migrations and all), not just the null backend.
#[test]
fn kernels_verified_through_full_machine() {
    let el = KroneckerGenerator::new(11, 8).seed(5).generate();
    let w = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(11);
    let mut machine = tiersim::core::Machine::new(MachineConfig::scaled_default(
        w.steady_app_bytes(),
        TieringMode::AutoNuma,
    ))
    .expect("machine");
    let g = build_sim_csr(&mut machine, &el, true, 4);
    let host = g.to_host_csr();
    let result = bfs(&mut machine, &g, 3, 4, BfsParams::default());
    assert_eq!(result.dist.host(), reference::bfs_ref(&host, 3).as_slice());
    // The machine observed real traffic while computing the real answer.
    assert!(machine.now_cycles() > 0);
    assert!(machine.mem().stats().total() > 100_000);
}

/// The profiler's CSV exports are well-formed and consistent with the run.
#[test]
fn csv_exports_are_consistent() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Bfs, Dataset::Urand);
    let r = cfg.run(w, TieringMode::AutoNuma).expect("run");

    let mut mem_trace = Vec::new();
    tiersim::profile::export::write_memory_trace(&mut mem_trace, &r.samples).unwrap();
    let text = String::from_utf8(mem_trace).unwrap();
    assert_eq!(text.lines().count(), r.samples.len() + 1);

    let mut mmap_trace = Vec::new();
    tiersim::profile::export::write_mmap_trace(&mut mmap_trace, &r.tracker).unwrap();
    let text = String::from_utf8(mmap_trace).unwrap();
    assert_eq!(text.lines().count(), r.tracker.len() + 1);

    let mut mapped = Vec::new();
    tiersim::profile::export::write_mapped_trace(
        &mut mapped,
        &r.samples,
        &r.tracker,
        tiersim::mem::Tier::Nvm,
    )
    .unwrap();
    let nvm_loads =
        r.samples.iter().filter(|s| !s.is_store && s.level == tiersim::mem::MemLevel::Nvm).count();
    assert_eq!(String::from_utf8(mapped).unwrap().lines().count(), nvm_loads + 1);
}

/// Sampling is unbiased: the sampled external fraction tracks the ground
/// truth from the memory system's full counters.
#[test]
fn sampling_tracks_ground_truth() {
    let cfg = ExperimentConfig {
        scale: 12,
        degree: 8,
        trials: 2,
        sample_period: 23,
        jobs: 1,
        ..ExperimentConfig::default()
    };
    let w = cfg.workload(Kernel::Cc, Dataset::Kron);
    let r = cfg.run(w, TieringMode::AutoNuma).expect("run");
    let sampled = tiersim::profile::LevelDistribution::of(&r.samples);
    // Ground truth counts loads and stores; compare external fractions
    // loosely (stores shift the mix slightly).
    let truth = r.mem_stats.external_fraction();
    let est = sampled.external_fraction();
    assert!(
        (est - truth).abs() < 0.1,
        "sampled external fraction {est:.3} vs ground truth {truth:.3}"
    );
}

/// All-DRAM and all-NVM baselines bracket the tiered configurations.
#[test]
fn baseline_modes_bracket_performance() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
    // Give the all-DRAM machine enough capacity to hold everything.
    let mut big = cfg.machine_for(&w, TieringMode::AllDram);
    big.mem.dram_capacity = w.peak_app_bytes() * 4;
    big.mem.nvm_capacity = w.peak_app_bytes() * 4;
    let all_dram = run_workload(big.clone(), w).expect("all dram");
    let mut nvm_cfg = big;
    nvm_cfg.mode = TieringMode::AllNvm;
    let all_nvm = run_workload(nvm_cfg, w).expect("all nvm");
    let auto = cfg.run(w, TieringMode::AutoNuma).expect("autonuma");
    assert!(
        all_dram.total_secs < all_nvm.total_secs,
        "DRAM-only ({:.4}s) must beat NVM-only ({:.4}s)",
        all_dram.total_secs,
        all_nvm.total_secs
    );
    assert!(
        auto.total_secs < all_nvm.total_secs * 1.05,
        "tiering should not be much worse than NVM-only"
    );
}

/// Memory Mode: all pages nominally live on NVM, the DRAM line-cache
/// serves hot lines, and performance sits between the all-DRAM and
/// all-NVM baselines.
#[test]
fn memory_mode_brackets_between_dram_and_nvm() {
    let cfg = tiny();
    let w = cfg.workload(Kernel::Bfs, Dataset::Kron);
    let mut big = cfg.machine_for(&w, TieringMode::AllDram);
    big.mem.dram_capacity = w.peak_app_bytes() * 4;
    big.mem.nvm_capacity = w.peak_app_bytes() * 4;
    let all_dram = run_workload(big.clone(), w).expect("all dram");
    let mut mm = big.clone();
    mm.mode = TieringMode::MemoryMode;
    let mem_mode = run_workload(mm, w).expect("memory mode");
    let mut nvm = big;
    nvm.mode = TieringMode::AllNvm;
    let all_nvm = run_workload(nvm, w).expect("all nvm");
    // Paper §2.1: with a footprint smaller than DRAM, Memory Mode has
    // little performance impact — it approaches the all-DRAM bound.
    assert!(
        mem_mode.total_secs < all_nvm.total_secs,
        "memory mode {:.4}s should beat NVM-only {:.4}s",
        mem_mode.total_secs,
        all_nvm.total_secs
    );
    assert!(
        mem_mode.total_secs < all_dram.total_secs * 1.5,
        "with footprint < DRAM cache, memory mode ({:.4}s) should approach DRAM-only ({:.4}s)",
        mem_mode.total_secs,
        all_dram.total_secs
    );
}

/// The machine honors MemBackend semantics used by external workloads.
#[test]
fn machine_is_a_usable_backend() {
    let w = WorkloadConfig::new(Kernel::Bfs, Dataset::Kron).scale(10);
    let mut machine = tiersim::core::Machine::new(MachineConfig::scaled_default(
        w.steady_app_bytes(),
        TieringMode::AutoNuma,
    ))
    .expect("machine");
    let addr = machine.mmap(8192, "custom.buffer");
    machine.store(addr, 8);
    machine.load(addr, 8);
    machine.cpu_work(1000);
    assert!(machine.tracker().len() == 1);
    machine.munmap(addr);
    assert!(machine.tracker().record(tiersim::profile::ObjectId(0)).unwrap().free_time.is_some());
}
