//! THP × tiering integration contract (ISSUE 9): enabling transparent
//! huge pages (`--thp`: khugepaged-style 2 MiB collapse plus a 16-page
//! fault-around window) must visibly change the memory profile of the
//! characterization workloads — fewer demand faults, a huge-page dent in
//! the TLB-miss curve, a different NUMA-hint-fault trajectory — while
//! staying inside the two standing contracts: byte-identical output for
//! every `--jobs` value (DESIGN.md §10) and crash-safe journal resume
//! (DESIGN.md §13). The journal fingerprint carries the THP bit, so a
//! sweep journal written under one regime refuses to resume under the
//! other.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tiersim::core::{ExperimentConfig, RunReport, TraceConfig};
use tiersim::policy::TieringMode;
use tiersim_bench::run_suite_journaled;
use tiersim_core::experiments::Characterization;
use tiersim_core::journal::{KillMode, KillSpec, RunnerOptions};
use tiersim_core::sweep::SweepAbort;
use tiersim_core::{Dataset, Kernel};

fn cfg(scale: u32, jobs: usize, thp: bool) -> ExperimentConfig {
    ExperimentConfig {
        scale,
        degree: 8,
        trials: 1,
        sample_period: 211,
        jobs,
        trace: TraceConfig::off(),
        tick_budget: 0,
        thp,
    }
}

fn serialized(report: &RunReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    report.write_summary_csv(&mut bytes).expect("summary csv");
    report.write_timeline_csv(&mut bytes).expect("timeline csv");
    bytes
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Counter-based scratch path (never wall-clock; the lint applies here).
fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tiersim-thp-{}-{tag}-{n}.jsonl", std::process::id()))
}

/// The headline acceptance check: the same BC/kron run with THP on vs
/// off produces different TLB-miss and hint-fault profiles. Scale 16 is
/// the smallest configuration whose edge array spans a 2 MiB-aligned
/// block, so khugepaged has something to collapse.
#[test]
fn thp_changes_tlb_and_hint_fault_profiles() {
    let run = |thp: bool| {
        let exp = cfg(16, 1, thp);
        let w = exp.workload(Kernel::Bc, Dataset::Kron);
        exp.run(w, TieringMode::AutoNuma).expect("bc/kron run")
    };
    let off = run(false);
    let on = run(true);

    // Fault-around replaces most demand faults with bulk population.
    assert_eq!(off.counters.pgfault_around, 0, "fault-around fired with THP off");
    assert!(on.counters.pgfault_around > 0, "fault-around never engaged");
    assert!(
        on.counters.pgfault < off.counters.pgfault,
        "bulk population should absorb demand faults: {} >= {}",
        on.counters.pgfault,
        off.counters.pgfault
    );

    // khugepaged collapsed at least one 2 MiB block...
    assert_eq!(off.counters.thp_collapse_alloc, 0);
    assert!(on.counters.thp_collapse_alloc > 0, "no block ever collapsed at scale 16");

    // ...which dents the TLB-miss curve: a huge mapping occupies one
    // TLB entry for 512 base pages.
    assert!(
        on.mem_stats.tlb_misses < off.mem_stats.tlb_misses,
        "huge mappings should reduce TLB misses: {} >= {}",
        on.mem_stats.tlb_misses,
        off.mem_stats.tlb_misses
    );

    // The AutoNUMA hint-fault trajectory shifts too: the scanner marks a
    // collapsed block once at its head instead of 512 times.
    assert_ne!(
        on.counters.numa_hint_faults, off.counters.numa_hint_faults,
        "hint-fault profile did not change under THP"
    );
}

/// The determinism contract holds under THP: the characterization sweep
/// renders and per-report CSVs are bytewise independent of the worker
/// count, and the THP knob demonstrably reached the machines.
#[test]
fn thp_characterization_is_byte_identical_across_jobs() {
    let a = Characterization::run(&cfg(11, 1, true)).expect("serial");
    let b = Characterization::run(&cfg(11, 3, true)).expect("parallel");
    assert_eq!(a.reports.len(), b.reports.len());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(serialized(ra), serialized(rb), "THP report CSVs diverged across jobs");
    }
    assert_eq!(a.render_table1(), b.render_table1());
    assert_eq!(a.render_fig3(), b.render_fig3());

    // Proof the sweep actually ran THP-enabled machines: every workload
    // bulk-populated at least once (scale 11 is too small to collapse,
    // but fault-around is footprint-independent).
    assert!(
        a.reports.iter().all(|r| r.counters.pgfault_around > 0),
        "a THP characterization cell never engaged fault-around"
    );
}

/// The crash-recovery contract holds under THP: kill the journaled
/// `repro_all` suite mid-sweep, resume with a different worker count,
/// and output/summary/trace exports are byte-identical to an
/// uninterrupted run. A journal written with THP on refuses to resume
/// with THP off — the regimes produce different bytes, so the
/// fingerprint must fence them apart.
#[test]
fn thp_suite_is_journal_resumable() {
    let suite_cfg = |jobs: usize| {
        let mut c = cfg(10, jobs, true);
        c.trace = TraceConfig::on();
        c
    };
    let clean_path = scratch("clean");
    let clean = run_suite_journaled(&suite_cfg(2), &clean_path, RunnerOptions::default(), false)
        .expect("uninterrupted THP suite");
    assert_eq!(clean.exit_code(), 0);

    let path = scratch("killed");
    let kill = KillSpec { at_append: 4, torn: false, mode: KillMode::Panic };
    let opts = RunnerOptions { kill: Some(kill), ..Default::default() };
    let aborted =
        catch_unwind(AssertUnwindSafe(|| run_suite_journaled(&suite_cfg(2), &path, opts, false)));
    assert!(aborted.expect_err("kill-point aborts the suite").is::<SweepAbort>());

    // Resuming with THP off must be refused: the fingerprint differs.
    let mut non_thp = suite_cfg(2);
    non_thp.thp = false;
    assert!(
        run_suite_journaled(&non_thp, &path, RunnerOptions::default(), false).is_err(),
        "a THP journal resumed under a non-THP config"
    );

    let resumed = run_suite_journaled(&suite_cfg(4), &path, RunnerOptions::default(), false)
        .expect("resumed THP suite");
    assert_eq!(resumed.output(), clean.output(), "THP suite output diverged after resume");
    assert_eq!(resumed.summary(), clean.summary(), "THP suite summary diverged after resume");
    assert_eq!(
        resumed.trace_exports(),
        clean.trace_exports(),
        "THP trace exports diverged after resume"
    );

    let _ = std::fs::remove_file(&clean_path);
    let _ = std::fs::remove_file(&path);
}
