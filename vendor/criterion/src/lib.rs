//! Offline stub of `criterion` covering the API tiersim's benches use:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `black_box`, `Throughput`/`BenchmarkGroup::throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling, each benchmark body runs a small
//! fixed number of iterations and the mean wall time is printed. When
//! invoked with `--test` (as `cargo test --benches` does), benchmarks
//! run a single iteration so the harness stays fast.

use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark (1 in `--test` mode).
fn iterations() -> u32 {
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        3
    }
}

/// The amount of work one benchmark iteration performs, for rate
/// reporting (real criterion's `Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration work of subsequent benchmarks in this
    /// group; their reports gain an elements/sec (or bytes/sec) rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0, timed_iters: 0 };
    f(&mut b);
    let mean = if b.timed_iters == 0 { 0 } else { b.elapsed_ns / u128::from(b.timed_iters) };
    let rate = throughput_suffix(throughput, mean);
    println!("bench {name}: {mean} ns/iter ({} iters){rate}", b.timed_iters);
}

/// Formats the rate suffix for a mean iteration time, e.g.
/// `", 12345678 elem/s"`. Empty when no throughput was declared or the
/// iteration was too fast to time.
fn throughput_suffix(throughput: Option<Throughput>, mean_ns: u128) -> String {
    if mean_ns == 0 {
        return String::new();
    }
    match throughput {
        Some(Throughput::Elements(n)) => {
            format!(", {} elem/s", u128::from(n) * 1_000_000_000 / mean_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!(", {} B/s", u128::from(n) * 1_000_000_000 / mean_ns)
        }
        None => String::new(),
    }
}

/// Passed to benchmark closures; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    timed_iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = iterations();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.timed_iters += iters;
    }
}

/// Defines a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum_rated", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn throughput_suffix_reports_rates() {
        assert_eq!(throughput_suffix(None, 100), "");
        assert_eq!(throughput_suffix(Some(Throughput::Elements(5)), 0), "");
        // 1000 elements in 1 µs = 1e9 elem/s.
        assert_eq!(
            throughput_suffix(Some(Throughput::Elements(1000)), 1000),
            ", 1000000000 elem/s"
        );
        assert_eq!(throughput_suffix(Some(Throughput::Bytes(64)), 1_000_000_000), ", 64 B/s");
    }
}
