//! Offline stub of `proptest` covering the API surface tiersim uses.
//!
//! Differences from the real crate, by design (the build environment has
//! no network access, so this is a self-contained replacement):
//!
//! - Each `proptest!` test runs a fixed number of deterministic cases
//!   ([`CASES`]); the RNG is seeded from the test's name, so failures
//!   reproduce exactly on every run and machine.
//! - There is no shrinking: a failing case reports the assertion as-is.
//! - `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) instead of
//!   returning `Err`, which is equivalent for test bodies that do not
//!   use `?`.

/// Number of generated cases per property test.
pub const CASES: u64 = 64;

/// Deterministic RNG used by the stub runner (SplitMix64).
pub mod test_runner {
    /// Deterministic stream of 64-bit draws.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), so every
        /// test gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: value generators composable with `prop_map`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// `any::<T>()` and the [`Arbitrary`] trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for the full value range of a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyValue<T>(PhantomData<T>);

    impl<T> AnyValue<T> {
        /// Creates the strategy.
        pub const fn new() -> Self {
            AnyValue(PhantomData)
        }
    }

    impl<T> Default for AnyValue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Conversion from a raw 64-bit draw, used by [`AnyValue`].
    pub trait FromBits {
        /// Builds a value from raw bits.
        fn from_bits(bits: u64) -> Self;
    }

    macro_rules! impl_from_bits_int {
        ($($t:ty),+) => {$(
            impl FromBits for $t {
                fn from_bits(bits: u64) -> $t {
                    bits as $t
                }
            }
        )+};
    }
    impl_from_bits_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl FromBits for bool {
        fn from_bits(bits: u64) -> bool {
            bits & 1 == 1
        }
    }

    impl<T: FromBits> Strategy for AnyValue<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_bits(rng.next_u64())
        }
    }

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl<T: FromBits> Arbitrary for T {
        type Strategy = AnyValue<T>;
        fn arbitrary() -> AnyValue<T> {
            AnyValue::new()
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-min, exclusive-max length range for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_excl: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::arbitrary::AnyValue;

    /// Uniform strategy over `true`/`false`.
    pub const ANY: AnyValue<::core::primitive::bool> = AnyValue::new();
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` body runs [`CASES`] deterministic
/// cases with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner_rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _ in 0..$crate::CASES {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut runner_rng);)+
                $body
            }
        }
    )+};
}

/// Uniform choice between the given strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion; panics on failure (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        A(u8),
        B(bool),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u8>().prop_map(Op::A), any::<bool>().prop_map(Op::B),]
    }

    proptest! {
        /// Doc comments and multiple parameters must parse.
        #[test]
        fn generated_values_in_range(
            x in 3u32..10,
            mut v in crate::collection::vec(0u64..100, 1..20),
            op in op_strategy(),
            f in -1e6f64..1e6,
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            v.sort_unstable();
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(f.abs() <= 1e6);
            match op {
                Op::A(_) | Op::B(_) => {}
            }
            prop_assert_eq!(b & b, b, "identity {}", b);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let s = crate::collection::vec((0u32..50, any::<bool>()), 0..30);
        let mut r1 = crate::test_runner::TestRng::from_name("det");
        let mut r2 = crate::test_runner::TestRng::from_name("det");
        for _ in 0..10 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
