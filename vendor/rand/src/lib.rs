//! Offline stub of the `rand` crate covering the API surface tiersim uses:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over half-open and inclusive
//! integer ranges, and `Rng::gen` for `f64`/integers/bool.
//!
//! The generator is a SplitMix64 — statistically adequate for synthetic
//! graph generation and, unlike the real `SmallRng`, guaranteed stable
//! across builds, which suits a deterministic simulator. It is **not**
//! the upstream algorithm, so streams differ from real `rand` 0.8.

use std::ops::{Range, RangeInclusive};

/// Seeding interface: only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced from one raw 64-bit draw (the stub's
/// equivalent of sampling the `Standard` distribution).
pub trait StandardSample {
    /// Converts a raw draw into `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardSample for $t {
            fn from_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit: f64 = StandardSample::from_bits(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

/// Random-value interface: `next_u64` plus the convenience samplers.
pub trait Rng {
    /// Returns the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..256 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
