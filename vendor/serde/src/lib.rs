//! Offline stub of the `serde` facade. The build environment has no
//! network access, and tiersim only uses serde through optional
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize,
//! serde::Deserialize))]` annotations, so re-exporting no-op derives is
//! sufficient to keep the feature compiling.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
