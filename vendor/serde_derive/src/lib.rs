//! Offline no-op stub of serde's derive macros. The derives accept the
//! `#[serde(...)]` helper attribute and expand to nothing, so types can
//! keep their `cfg_attr(feature = "serde", derive(...))` annotations
//! without a real serde implementation in the build environment.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
