//! The counter-conservation pass.
//!
//! Contract (DESIGN.md §9): the vmstat counters in `VmCounters` are only
//! trustworthy because `audit.rs::check_counters` cross-checks them with
//! conservation laws. This pass makes the law surface total in both
//! directions:
//!
//! - **counter-without-law** — a `*Counters` field mutated anywhere in
//!   `crates/os`/`crates/mem` library code never appears in any law, so
//!   nothing would catch it drifting;
//! - **law-without-mutation** — a law references a field no code ever
//!   mutates, so the law is vacuous (usually a renamed counter).
//!
//! "Appears in a law" means the field's identifier occurs in the token
//! stream of `check_counters` or any function reachable from it through
//! the call map — that closure is what lets laws use helper methods like
//! `pgdemote_total()` instead of naming raw fields.

use crate::diag::Diagnostic;
use crate::item_model::{Item, ItemKind, Project};
use std::collections::{BTreeMap, BTreeSet};

/// Pass id (used in `allow(...)` annotations and baseline keys).
pub const NAME: &str = "counter-conservation";

/// The function holding the conservation laws.
const AUDIT_FN: &str = "check_counters";

/// Paths whose counter mutations the contract covers.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/os/") || path.starts_with("crates/mem/")
}

fn diag(path: &str, line: usize, item: &str, token: &str, message: String) -> Diagnostic {
    Diagnostic {
        tool: "analyze",
        rule: NAME.to_string(),
        path: path.to_string(),
        line,
        item: item.to_string(),
        token: token.to_string(),
        message,
        baselined: false,
    }
}

/// Runs the pass over the modeled project.
pub fn run(project: &Project) -> Vec<Diagnostic> {
    // The counters struct: a `*Counters` struct declared in scope.
    let counters = project.items().find(|(f, i)| {
        i.kind == ItemKind::Struct && i.name.ends_with("Counters") && in_scope(&f.path)
    });
    let Some((counters_file, counters_item)) = counters else {
        return Vec::new(); // nothing to check (fixtures without counters)
    };
    let fields: BTreeSet<&str> = counters_item.fields.iter().map(String::as_str).collect();

    // Mutation sites: `<recv> . <field> (+=|-=|=)` in non-test fns in
    // scope. Keyed by field, keeping the first site for the report.
    let mut mutated: BTreeMap<&str, (String, usize, String)> = BTreeMap::new();
    for (file, item) in project.items() {
        if item.kind != ItemKind::Fn || item.in_test || !in_scope(&file.path) {
            continue;
        }
        for w in 2..item.tokens.len().saturating_sub(1) {
            let t = &item.tokens[w];
            let Some(field) = fields.get(t.text.as_str()).copied() else { continue };
            if item.tokens[w - 1].text != "." {
                continue;
            }
            let next = item.tokens[w + 1].text.as_str();
            if matches!(next, "+=" | "-=" | "=") {
                mutated.entry(field).or_insert((file.path.clone(), t.line, item.qual.clone()));
            }
        }
    }

    // Law terms: field identifiers appearing in `check_counters` or any
    // function reachable from it (helper-method closure).
    let Some((audit_file, audit_item)) = project.find_item(ItemKind::Fn, AUDIT_FN) else {
        // Counters exist but no audit function at all: every mutated
        // field is uncovered. Anchor at the struct.
        return mutated
            .keys()
            .map(|field| {
                diag(
                    &counters_file.path,
                    field_line(counters_item, field),
                    &counters_item.name,
                    field,
                    format!("counter `{field}` is mutated but no `{AUDIT_FN}` law function exists"),
                )
            })
            .collect();
    };
    let reachable = project.call_map().reachable(&[&audit_item.qual]);
    let mut law_terms: BTreeMap<&str, usize> = BTreeMap::new(); // field -> anchor line
    for (_, item) in project.items() {
        if item.kind != ItemKind::Fn || !reachable.contains(&item.qual) {
            continue;
        }
        for t in &item.tokens {
            if let Some(field) = fields.get(t.text.as_str()).copied() {
                law_terms.entry(field).or_insert(t.line);
            }
        }
    }

    let mut out = Vec::new();
    for (field, (path, line, fn_qual)) in &mutated {
        if !law_terms.contains_key(field) {
            out.push(diag(
                path,
                *line,
                fn_qual,
                field,
                format!(
                    "counter `{field}` is mutated here but appears in no conservation law in \
                     {} — add a law to `{AUDIT_FN}` or the drift is invisible",
                    audit_file.path
                ),
            ));
        }
    }
    for (field, line) in &law_terms {
        if !mutated.contains_key(field) {
            out.push(diag(
                &audit_file.path,
                *line,
                AUDIT_FN,
                field,
                format!(
                    "law references counter `{field}` but nothing in crates/os or crates/mem \
                     ever mutates it — the law is vacuous"
                ),
            ));
        }
    }
    out
}

/// Line of a field's declaration inside the counters struct (falls back
/// to the struct's own line).
fn field_line(counters: &Item, field: &str) -> usize {
    counters
        .tokens
        .windows(2)
        .find(|w| w[0].text == field && w[1].text == ":")
        .map(|w| w[0].line)
        .unwrap_or(counters.start_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_model::Project;

    /// A miniature os crate: two counters, one law, one engine.
    fn fixture(engine_body: &str, audit_body: &str) -> Vec<Diagnostic> {
        let counters = "pub struct VmCounters {\n    pub hits: u64,\n    pub misses: u64,\n}\n\
                        impl VmCounters {\n    pub fn total(&self) -> u64 { self.hits + self.misses }\n}\n";
        let engine = format!("pub fn step(c: &mut VmCounters) {{\n{engine_body}\n}}\n");
        let audit = format!("pub fn check_counters(c: &VmCounters) {{\n{audit_body}\n}}\n");
        let project = Project::from_sources(vec![
            ("crates/os/src/counters.rs".to_string(), counters.to_string()),
            ("crates/os/src/engine.rs".to_string(), engine),
            ("crates/os/src/audit.rs".to_string(), audit),
        ]);
        run(&project)
    }

    #[test]
    fn covered_counters_are_clean() {
        let diags =
            fixture("    c.hits += 1;\n    c.misses += 1;", "    let _ = c.hits <= c.misses;");
        assert_eq!(diags, Vec::new(), "both fields mutated and in a law");
    }

    #[test]
    fn planted_counter_without_law_is_flagged() {
        let diags = fixture("    c.hits += 1;\n    c.misses += 1;", "    let _ = c.hits;");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].token, "misses");
        assert_eq!(diags[0].path, "crates/os/src/engine.rs");
        assert!(diags[0].message.contains("no conservation law"));
    }

    #[test]
    fn planted_law_without_mutation_is_flagged() {
        let diags = fixture("    c.hits += 1;", "    let _ = c.hits + c.misses;");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].token, "misses");
        assert_eq!(diags[0].path, "crates/os/src/audit.rs");
        assert!(diags[0].message.contains("vacuous"));
    }

    #[test]
    fn helper_methods_count_as_law_coverage() {
        // The law only calls `c.total()`; both fields are covered through
        // the call-map closure into `VmCounters::total`.
        let diags = fixture("    c.hits += 1;\n    c.misses += 1;", "    let _ = c.total() >= 1;");
        assert_eq!(diags, Vec::new());
    }

    #[test]
    fn comparisons_and_test_code_are_not_mutations() {
        let counters = "pub struct VmCounters {\n    pub hits: u64,\n}\n";
        let engine = "pub fn read(c: &VmCounters) -> bool { c.hits == 3 }\n\
                      #[cfg(test)]\nmod tests {\n    fn t(c: &mut super::VmCounters) { c.hits += 1; }\n}\n";
        let audit = "pub fn check_counters(c: &VmCounters) { let _ = c.hits; }\n";
        let project = Project::from_sources(vec![
            ("crates/os/src/counters.rs".to_string(), counters.to_string()),
            ("crates/os/src/engine.rs".to_string(), engine.to_string()),
            ("crates/os/src/audit.rs".to_string(), audit.to_string()),
        ]);
        let diags = run(&project);
        // `hits` is in a law but its only mutation is test-only: vacuous.
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("vacuous"));
    }

    #[test]
    fn missing_audit_fn_flags_every_mutated_counter() {
        let counters = "pub struct VmCounters {\n    pub hits: u64,\n}\n";
        let engine = "pub fn step(c: &mut VmCounters) { c.hits += 1; }\n";
        let project = Project::from_sources(vec![
            ("crates/os/src/counters.rs".to_string(), counters.to_string()),
            ("crates/os/src/engine.rs".to_string(), engine.to_string()),
        ]);
        let diags = run(&project);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no `check_counters` law function"));
    }
}
