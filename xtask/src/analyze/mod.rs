//! `cargo xtask analyze`: the project-wide contract analyzer.
//!
//! Three passes over the [`crate::item_model::Project`] (DESIGN.md §14),
//! each enforcing a cross-crate contract that otherwise only fails at
//! runtime:
//!
//! - [`counter_conservation`] — every mutated `VmCounters` field has an
//!   audit law, and every law term has a mutation site;
//! - [`trace_coverage`] — every `TraceEvent` variant is emitted,
//!   replayed, and present in the `trace-check` schema;
//! - [`panic_reachability`] — no panic or slice-index in library code
//!   reachable from `Machine::run` / `run_cells`.
//!
//! Findings are suppressed two ways:
//!
//! - a `tiersim-analyze: allow(<pass>)` comment on the finding's line or
//!   the line above — for findings that are *reviewed and intended*
//!   (each annotation should say why);
//! - the checked-in baseline (`ANALYZE_BASELINE.txt`) — for pre-existing
//!   findings we have not paid down yet. Baseline keys are
//!   `pass \t path \t item \t token` with an occurrence count, so they
//!   survive unrelated line churn but ratchet: a count can only shrink.
//!   New findings beyond a key's count fail the build; stale entries are
//!   reported so the file gets re-tightened with `--write-baseline`.

pub mod counter_conservation;
pub mod panic_reachability;
pub mod trace_coverage;

use crate::diag::Diagnostic;
use crate::item_model::Project;
use std::collections::BTreeMap;

/// Pass ids and one-line descriptions, for `analyze --list`.
pub const PASSES: &[(&str, &str)] = &[
    (
        counter_conservation::NAME,
        "every mutated VmCounters field has an audit law; every law term has a mutation site",
    ),
    (
        trace_coverage::NAME,
        "every TraceEvent variant is emitted, handled in replay.rs, and in the trace-check schema",
    ),
    (
        panic_reachability::NAME,
        "no panic!/assert!/unreachable!/slice-index reachable from Machine::run or run_cells",
    ),
];

/// Runs every pass and filters `tiersim-analyze: allow(<pass>)`
/// annotations. Returned diagnostics are sorted by path, line, rule.
pub fn run_all(project: &Project) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(counter_conservation::run(project));
    diags.extend(trace_coverage::run(project));
    diags.extend(panic_reachability::run(project));
    diags.retain(|d| !allowed(project, d));
    diags.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.token).cmp(&(&b.path, b.line, &b.rule, &b.token))
    });
    diags
}

/// True when the finding's line (or the line above it) carries a
/// `tiersim-analyze: allow(<pass>)` comment — same shape as the lint
/// suppressions, scoped per pass.
fn allowed(project: &Project, d: &Diagnostic) -> bool {
    let Some(file) = project.file(&d.path) else { return false };
    let needle = format!("tiersim-analyze: allow({})", d.rule);
    let has = |number: usize| {
        number >= 1
            && file.lines.get(number - 1).is_some_and(|l| l.comment.contains(needle.as_str()))
    };
    has(d.line) || has(d.line.wrapping_sub(1))
}

/// The stable identity of a finding for baseline matching: everything
/// except the line number, so unrelated edits don't churn the file.
pub fn baseline_key(d: &Diagnostic) -> String {
    format!("{}\t{}\t{}\t{}", d.rule, d.path, d.item, d.token)
}

/// Parses a baseline file: `pass<TAB>path<TAB>item<TAB>token<TAB>count`
/// per line, `#` comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let [rule, path, item, token, count] = fields[..] else {
            return Err(format!("baseline line {}: expected 5 tab-separated fields", idx + 1));
        };
        let count: usize =
            count.parse().map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        out.insert(format!("{rule}\t{path}\t{item}\t{token}"), count);
    }
    Ok(out)
}

/// Marks up to `count` findings per baseline key as baselined. Returns
/// the stale keys: baseline entries whose budget was not fully used (the
/// file should be regenerated to ratchet them down).
pub fn apply_baseline(diags: &mut [Diagnostic], baseline: &BTreeMap<String, usize>) -> Vec<String> {
    let mut budget: BTreeMap<&str, usize> =
        baseline.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    for d in diags.iter_mut() {
        let key = baseline_key(d);
        if let Some(left) = budget.get_mut(key.as_str()) {
            if *left > 0 {
                *left -= 1;
                d.baselined = true;
            }
        }
    }
    budget
        .into_iter()
        .filter(|(_, left)| *left > 0)
        .map(|(k, left)| format!("{k} ({left} unused)"))
        .collect()
}

/// Renders the current findings as a fresh baseline file.
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry(baseline_key(d)).or_insert(0) += 1;
    }
    let mut out = String::from(
        "# tiersim-analyze baseline: pass<TAB>path<TAB>item<TAB>token<TAB>count\n\
         # Ratchet only: counts may shrink (regenerate with `cargo xtask analyze\n\
         # --write-baseline`), never grow. New findings must be fixed or carry a\n\
         # reviewed `tiersim-analyze: allow(<pass>)` annotation.\n",
    );
    for (key, count) in counts {
        out.push_str(&format!("{key}\t{count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, path: &str, line: usize, token: &str) -> Diagnostic {
        Diagnostic {
            tool: "analyze",
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            item: "it".to_string(),
            token: token.to_string(),
            message: "m".to_string(),
            baselined: false,
        }
    }

    #[test]
    fn baseline_round_trips_and_counts() {
        let diags =
            vec![diag("p", "a.rs", 3, "x"), diag("p", "a.rs", 9, "x"), diag("q", "b.rs", 1, "y")];
        let text = render_baseline(&diags);
        let parsed = parse_baseline(&text).expect("own output parses");
        assert_eq!(parsed.get("p\ta.rs\tit\tx"), Some(&2));
        assert_eq!(parsed.get("q\tb.rs\tit\ty"), Some(&1));
    }

    #[test]
    fn apply_baseline_marks_within_budget_and_reports_stale() {
        let mut diags = vec![diag("p", "a.rs", 3, "x"), diag("p", "a.rs", 9, "x")];
        let baseline = parse_baseline("p\ta.rs\tit\tx\t1\nq\tgone.rs\tit\tz\t2\n").unwrap();
        let stale = apply_baseline(&mut diags, &baseline);
        // One of two identical findings absorbed; the second stays active.
        assert_eq!(diags.iter().filter(|d| d.baselined).count(), 1);
        assert_eq!(diags.iter().filter(|d| !d.baselined).count(), 1);
        // The entry for a fixed finding is reported stale.
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("gone.rs"));
    }

    #[test]
    fn baseline_is_line_number_independent() {
        assert_eq!(
            baseline_key(&diag("p", "a.rs", 3, "x")),
            baseline_key(&diag("p", "a.rs", 999, "x"))
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_baseline("only three\tfields\there\n").is_err());
        assert!(parse_baseline("p\ta\ti\tt\tnot-a-number\n").is_err());
        assert!(parse_baseline("# comment\n\n").unwrap().is_empty());
    }

    /// The self-check: the repo tip must be clean under `analyze` with
    /// the committed baseline, with zero delta in either direction —
    /// new findings fail here, and so do stale baseline entries (fixing
    /// a finding requires regenerating the baseline, keeping the
    /// ratchet honest). The contract passes (counter-conservation,
    /// trace-coverage) must be *exactly* clean, not baseline-absorbed.
    #[test]
    fn repo_tip_is_clean_under_committed_baseline() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask lives one level below the workspace root");
        let project = Project::load(root).expect("workspace sources load");
        let mut diags = run_all(&project);
        let contract: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.rule != panic_reachability::NAME).collect();
        assert!(
            contract.is_empty(),
            "counter/trace contract violations must be fixed, never baselined: {contract:?}"
        );
        let baseline_text = std::fs::read_to_string(root.join("ANALYZE_BASELINE.txt"))
            .expect("committed ANALYZE_BASELINE.txt exists");
        let baseline = parse_baseline(&baseline_text).expect("committed baseline parses");
        let stale = apply_baseline(&mut diags, &baseline);
        let active: Vec<&Diagnostic> = diags.iter().filter(|d| !d.baselined).collect();
        assert!(active.is_empty(), "non-baselined analyze findings: {active:#?}");
        assert!(
            stale.is_empty(),
            "stale baseline entries (run `cargo xtask analyze --write-baseline`): {stale:?}"
        );
    }

    #[test]
    fn allow_annotation_suppresses_on_same_or_previous_line() {
        let src = "\
fn f() {\n\
    // tiersim-analyze: allow(panic-reach) — proven unreachable by X\n\
    panic!();\n\
    panic!();\n\
    panic!(); // tiersim-analyze: allow(panic-reach)\n\
}\n";
        let project =
            Project::from_sources(vec![("crates/x/src/lib.rs".to_string(), src.to_string())]);
        let d = |line| diag("panic-reach", "crates/x/src/lib.rs", line, "panic");
        assert!(allowed(&project, &d(3)), "previous-line annotation");
        assert!(!allowed(&project, &d(4)), "unannotated line");
        assert!(allowed(&project, &d(5)), "same-line annotation");
        assert!(
            !allowed(&project, &diag("other-pass", "crates/x/src/lib.rs", 3, "panic")),
            "annotation is scoped to its pass"
        );
    }
}
