//! The panic-reachability pass.
//!
//! Contract: the simulation hot paths — everything reachable from
//! `Machine::run` (the access loop) and `run_cells` (the sweep runner) —
//! must not panic. The per-line lint already bans `unwrap`/`expect`
//! everywhere, but it cannot see *reachability*: a `panic!` in a helper
//! three calls deep is invisible to line rules and only fires in
//! production-shaped runs. This pass walks the call map from the two
//! roots and flags, in reachable non-test library functions:
//!
//! - panicking macros: `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*` is exempt — compiled out of release builds, and
//!   the audit checkpoints rely on it);
//! - slice indexing (`expr[...]`), which panics out of bounds.
//!
//! The call map is over-approximate (method calls edge to every function
//! of that name), so a "reachable" verdict can be a false positive but
//! an absent finding is trustworthy. Reviewed-and-intended sites carry a
//! `tiersim-analyze: allow(panic-reach)` annotation stating why the
//! panic cannot fire; legacy sites live in the baseline.

use crate::diag::Diagnostic;
use crate::item_model::{is_keyword, ItemKind, Project};

/// Pass id (used in `allow(...)` annotations and baseline keys).
pub const NAME: &str = "panic-reach";

/// Hot-path entry points. `run_cells_fallible` is listed explicitly so
/// the contract survives a refactor that stops routing it through
/// `run_cells`.
pub const ROOTS: &[&str] = &["Machine::run", "run_cells", "run_cells_fallible"];

/// Macros that abort the simulation when they fire.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Only library code is held to the contract; bins, integration tests
/// and xtask itself may panic.
fn in_scope(path: &str) -> bool {
    path.starts_with("crates/") && !path.contains("/tests/")
}

/// Runs the pass over the modeled project.
pub fn run(project: &Project) -> Vec<Diagnostic> {
    let reachable = project.call_map().reachable(&root_refs());
    let mut out = Vec::new();
    for (file, item) in project.items() {
        if item.kind != ItemKind::Fn
            || item.in_test
            || !in_scope(&file.path)
            || !reachable.contains(&item.qual)
        {
            continue;
        }
        for (w, t) in item.tokens.iter().enumerate() {
            let next = item.tokens.get(w + 1).map(|n| n.text.as_str());
            if PANIC_MACROS.contains(&t.text.as_str()) && next == Some("!") {
                out.push(finding(
                    file,
                    item,
                    t.line,
                    &t.text,
                    format!(
                        "`{}!` is reachable from the hot path ({}) — return an error or prove \
                         it unreachable with an allow annotation",
                        t.text,
                        roots_hit(&reachable)
                    ),
                ));
            }
            if t.text == "[" && w > 0 && indexable(&item.tokens[w - 1].text) {
                out.push(finding(
                    file,
                    item,
                    t.line,
                    &format!("{}[", item.tokens[w - 1].text),
                    format!(
                        "slice index can panic out of bounds on the hot path ({}) — prefer \
                         `.get()` or prove the bound with an allow annotation",
                        roots_hit(&reachable)
                    ),
                ));
            }
        }
    }
    out
}

fn root_refs() -> Vec<&'static str> {
    ROOTS.to_vec()
}

/// Which configured roots actually exist in this project (for messages).
fn roots_hit(reachable: &std::collections::BTreeSet<String>) -> String {
    let hit: Vec<&str> = ROOTS
        .iter()
        .copied()
        .filter(|r| {
            reachable.contains(*r) || reachable.iter().any(|q| q.rsplit("::").next() == Some(*r))
        })
        .collect();
    if hit.is_empty() {
        "hot path roots".to_string()
    } else {
        hit.join(", ")
    }
}

/// Can the previous token end an expression that `[` would index?
/// Identifiers (not keywords), `)` and `]` can; `vec![`/`#[`/slice
/// patterns cannot (their previous token is `!`, `#`, `=`, `let`, …).
fn indexable(prev: &str) -> bool {
    prev == ")"
        || prev == "]"
        || (prev.chars().next().is_some_and(char::is_alphanumeric) || prev.starts_with('_'))
            && !is_keyword(prev)
}

fn finding(
    file: &crate::item_model::FileModel,
    item: &crate::item_model::Item,
    line: usize,
    token: &str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        tool: "analyze",
        rule: NAME.to_string(),
        path: file.path.clone(),
        line,
        item: item.qual.clone(),
        token: token.to_string(),
        message,
        baselined: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_model::Project;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let project = Project::from_sources(vec![(
            "crates/core/src/machine.rs".to_string(),
            src.to_string(),
        )]);
        run(&project)
    }

    #[test]
    fn panic_reachable_from_root_is_flagged() {
        let src = "pub struct Machine;\n\
                   impl Machine {\n    pub fn run(&mut self) { helper(); }\n}\n\
                   fn helper() { deep(); }\n\
                   fn deep() {\n    unreachable!(\"boom\");\n}\n";
        let found = diags(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].token, "unreachable");
        assert_eq!(found[0].item, "deep");
        assert_eq!(found[0].line, 7);
        assert!(found[0].message.contains("Machine::run"));
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let src = "pub struct Machine;\n\
                   impl Machine {\n    pub fn run(&mut self) {}\n}\n\
                   fn island() { panic!(\"never called from the hot path\"); }\n";
        assert_eq!(diags(src), Vec::new());
    }

    #[test]
    fn slice_indexing_is_flagged_but_macros_and_attrs_are_not() {
        let src = "pub fn run_cells(xs: &[u64]) -> u64 {\n    let v = vec![1, 2];\n    let _ = v;\n    xs[0]\n}\n";
        let found = diags(src);
        assert_eq!(found.len(), 1, "vec![ must not count as indexing: {found:?}");
        assert_eq!(found[0].token, "xs[");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn debug_assert_and_test_code_are_exempt() {
        let src = "pub fn run_cells(x: u64) {\n    debug_assert!(x > 0);\n}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1, 1); }\n}\n";
        assert_eq!(diags(src), Vec::new());
    }

    #[test]
    fn assert_in_reachable_method_call_chain_is_flagged() {
        // run_cells -> x.check() resolves by name to Checker::check.
        let src = "pub fn run_cells(c: &Checker) { c.check(); }\n\
                   pub struct Checker;\n\
                   impl Checker {\n    pub fn check(&self) { assert!(false); }\n}\n";
        let found = diags(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "Checker::check");
    }

    #[test]
    fn allow_annotation_suppresses_via_run_all() {
        let src = "pub fn run_cells() {\n    // tiersim-analyze: allow(panic-reach) — guarded by construction\n    unreachable!();\n}\n";
        let project =
            Project::from_sources(vec![("crates/core/src/sweep.rs".to_string(), src.to_string())]);
        assert_eq!(super::super::run_all(&project), Vec::new());
    }

    #[test]
    fn out_of_scope_paths_are_ignored() {
        let src = "pub fn run_cells() { panic!(); }\n";
        let project = Project::from_sources(vec![
            ("src/bin/repro_all.rs".to_string(), src.to_string()),
            ("crates/os/tests/behavior.rs".to_string(), src.to_string()),
        ]);
        assert_eq!(run(&project), Vec::new());
    }
}
