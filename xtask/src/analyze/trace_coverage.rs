//! The trace-coverage pass.
//!
//! Contract (DESIGN.md §11): the trace layer is only useful if it is
//! *total* — every `TraceEvent` variant must actually be emitted by the
//! engine/reclaim/fault/sweep code, must have a handling arm in
//! `replay.rs` (so replaying a trace reconstructs the vmstat deltas), and
//! its `name()` string must be in `trace_check.rs`'s `KNOWN_EVENTS`
//! schema (so exported JSONL validates). A variant missing any leg is a
//! finding:
//!
//! - **no emission site** — the variant is dead vocabulary, or worse,
//!   the decision it should record is untraced;
//! - **no replay arm** — replay silently drops it and the trace↔vmstat
//!   conservation property can no longer hold by construction;
//! - **not in schema** — `cargo xtask trace-check` would reject real
//!   traces containing it.
//!
//! Emission sites are `TraceEvent::Variant` constructions in non-test
//! functions under `crates/os`, `crates/mem`, `crates/core` — except
//! `replay.rs`, whose constructions are *handling*, counted separately.
//! The `name()` strings are read from the raw text of the enum's file
//! (the lexer blanks string literals), as is the schema file.

use crate::diag::Diagnostic;
use crate::item_model::{Item, ItemKind, Project};
use crate::lexer::is_ident_char;
use std::collections::{BTreeMap, BTreeSet};

/// Pass id (used in `allow(...)` annotations and baseline keys).
pub const NAME: &str = "trace-coverage";

/// The traced-event enum.
const EVENT_ENUM: &str = "TraceEvent";

/// Crates whose non-test code counts as emission sites.
fn emission_scope(path: &str) -> bool {
    (path.starts_with("crates/os/")
        || path.starts_with("crates/mem/")
        || path.starts_with("crates/core/"))
        && !path.ends_with("/replay.rs")
}

fn diag(path: &str, line: usize, variant: &str, message: String) -> Diagnostic {
    Diagnostic {
        tool: "analyze",
        rule: NAME.to_string(),
        path: path.to_string(),
        line,
        item: EVENT_ENUM.to_string(),
        token: variant.to_string(),
        message,
        baselined: false,
    }
}

/// Runs the pass over the modeled project.
pub fn run(project: &Project) -> Vec<Diagnostic> {
    let Some((enum_file, enum_item)) = project.find_item(ItemKind::Enum, EVENT_ENUM) else {
        return Vec::new(); // nothing to check (fixtures without the enum)
    };
    let variants: Vec<&str> = enum_item.fields.iter().map(String::as_str).collect();
    // Restrict name() extraction to the method's own span when it is
    // modeled, so test/doc code in the same file can't contribute fake
    // mappings.
    let name_span = enum_file
        .items
        .iter()
        .find(|i| i.kind == ItemKind::Fn && i.qual == format!("{EVENT_ENUM}::name"))
        .map(|i| (i.start_line, i.end_line));
    let names = name_strings(&enum_file.raw, name_span);
    let schema =
        project.files.iter().find(|f| f.path.ends_with("trace_check.rs")).map(|f| f.raw.as_str());

    // Where is each variant constructed (`TraceEvent :: Variant`)?
    let mut emitted: BTreeSet<&str> = BTreeSet::new();
    let mut replayed: BTreeSet<&str> = BTreeSet::new();
    for (file, item) in project.items() {
        if item.kind != ItemKind::Fn || item.in_test {
            continue;
        }
        let is_replay = file.path.ends_with("/replay.rs");
        if !is_replay && !emission_scope(&file.path) {
            continue;
        }
        for w in item.tokens.windows(3) {
            if w[0].text == EVENT_ENUM && w[1].text == "::" {
                if let Some(v) = variants.iter().find(|v| **v == w[2].text) {
                    if is_replay { &mut replayed } else { &mut emitted }.insert(v);
                }
            }
        }
    }

    let mut out = Vec::new();
    for v in &variants {
        let line = variant_line(enum_item, v);
        if !emitted.contains(v) {
            out.push(diag(
                &enum_file.path,
                line,
                v,
                format!(
                    "variant `{v}` is never emitted by engine/reclaim/fault/sweep code — \
                     dead vocabulary or an untraced decision"
                ),
            ));
        }
        if !replayed.contains(v) {
            out.push(diag(
                &enum_file.path,
                line,
                v,
                format!(
                    "variant `{v}` has no handling arm in replay.rs — replay would silently \
                     drop it and break the trace↔vmstat conservation property"
                ),
            ));
        }
        match (names.get(*v), schema) {
            (None, _) => out.push(diag(
                &enum_file.path,
                line,
                v,
                format!("variant `{v}` has no `name()` mapping — exporters cannot serialize it"),
            )),
            (Some(name), Some(schema_raw)) if !schema_raw.contains(&format!("\"{name}\"")) => {
                out.push(diag(
                    &enum_file.path,
                    line,
                    v,
                    format!(
                        "variant `{v}`'s name `{name}` is missing from the trace-check schema \
                         (KNOWN_EVENTS) — exported traces containing it would fail validation"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Extracts the `TraceEvent::Variant { .. } => "snake_name"` mappings
/// from the enum file's raw text (string literals are blanked in the
/// lexed view, so this works on the original source). When `span` is
/// given, only lines inside it (the `name()` method body) are scanned.
fn name_strings(raw: &str, span: Option<(usize, usize)>) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in raw.lines().enumerate() {
        if let Some((start, end)) = span {
            if idx + 1 < start || idx + 1 > end {
                continue;
            }
        }
        let Some(pos) = line.find(&format!("{EVENT_ENUM}::")) else { continue };
        let after = &line[pos + EVENT_ENUM.len() + 2..];
        let variant: String = after.chars().take_while(|c| is_ident_char(*c)).collect();
        let Some(arrow) = line.find("=>") else { continue };
        let rest = &line[arrow + 2..];
        let Some(q1) = rest.find('"') else { continue };
        let Some(q2) = rest[q1 + 1..].find('"') else { continue };
        if !variant.is_empty() {
            out.entry(variant).or_insert_with(|| rest[q1 + 1..q1 + 1 + q2].to_string());
        }
    }
    out
}

/// Declaration line of a variant inside the enum item.
fn variant_line(enum_item: &Item, variant: &str) -> usize {
    enum_item
        .tokens
        .iter()
        .find(|t| t.text == variant)
        .map(|t| t.line)
        .unwrap_or(enum_item.start_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item_model::Project;

    /// A miniature trace stack: enum + name() in one file, an engine
    /// emitter, a replay handler, and the trace-check schema.
    fn fixture(engine: &str, replay: &str, schema: &str) -> Vec<Diagnostic> {
        let event = "pub enum TraceEvent {\n    HintFault { page: u64 },\n    PromoteAccept { page: u64 },\n}\n\
                     impl TraceEvent {\n    pub fn name(self) -> &'static str {\n        match self {\n            TraceEvent::HintFault { .. } => \"hint_fault\",\n            TraceEvent::PromoteAccept { .. } => \"promote_accept\",\n        }\n    }\n}\n";
        let project = Project::from_sources(vec![
            ("crates/trace/src/event.rs".to_string(), event.to_string()),
            ("crates/os/src/engine.rs".to_string(), engine.to_string()),
            ("crates/os/src/replay.rs".to_string(), replay.to_string()),
            ("xtask/src/trace_check.rs".to_string(), schema.to_string()),
        ]);
        run(&project)
    }

    const FULL_ENGINE: &str = "pub fn step() {\n    record(TraceEvent::HintFault { page: 1 });\n    record(TraceEvent::PromoteAccept { page: 1 });\n}\n";
    const FULL_REPLAY: &str = "pub fn replay_counters(e: TraceEvent) {\n    match e {\n        TraceEvent::HintFault { .. } => {}\n        TraceEvent::PromoteAccept { .. } => {}\n    }\n}\n";
    const FULL_SCHEMA: &str =
        "pub const KNOWN_EVENTS: &[&str] = &[\"hint_fault\", \"promote_accept\"];\n";

    #[test]
    fn total_coverage_is_clean() {
        assert_eq!(fixture(FULL_ENGINE, FULL_REPLAY, FULL_SCHEMA), Vec::new());
    }

    #[test]
    fn planted_unemitted_variant_is_flagged() {
        let engine = "pub fn step() {\n    record(TraceEvent::HintFault { page: 1 });\n}\n";
        let diags = fixture(engine, FULL_REPLAY, FULL_SCHEMA);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].token, "PromoteAccept");
        assert!(diags[0].message.contains("never emitted"));
        // Anchored at the variant's declaration in the enum file.
        assert_eq!(diags[0].path, "crates/trace/src/event.rs");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn planted_unreplayed_variant_is_flagged() {
        let replay = "pub fn replay_counters(e: TraceEvent) {\n    match e {\n        TraceEvent::HintFault { .. } => {}\n        _ => {}\n    }\n}\n";
        let diags = fixture(FULL_ENGINE, replay, FULL_SCHEMA);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].token, "PromoteAccept");
        assert!(diags[0].message.contains("no handling arm in replay.rs"));
    }

    #[test]
    fn planted_schema_gap_is_flagged() {
        let schema = "pub const KNOWN_EVENTS: &[&str] = &[\"hint_fault\"];\n";
        let diags = fixture(FULL_ENGINE, FULL_REPLAY, schema);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].token, "PromoteAccept");
        assert!(diags[0].message.contains("missing from the trace-check schema"));
    }

    #[test]
    fn replay_construction_does_not_count_as_emission() {
        // Only replay.rs constructs PromoteAccept: still unemitted.
        let engine = "pub fn step() {\n    record(TraceEvent::HintFault { page: 1 });\n}\n";
        let diags = fixture(engine, FULL_REPLAY, FULL_SCHEMA);
        assert!(diags.iter().any(|d| d.message.contains("never emitted")));
    }

    #[test]
    fn test_code_emission_does_not_count() {
        let engine = "pub fn step() {\n    record(TraceEvent::HintFault { page: 1 });\n}\n\
                      #[cfg(test)]\nmod tests {\n    fn t() { record(TraceEvent::PromoteAccept { page: 1 }); }\n}\n";
        let diags = fixture(engine, FULL_REPLAY, FULL_SCHEMA);
        assert_eq!(diags.len(), 1, "test-only emission must not satisfy the contract");
        assert!(diags[0].message.contains("never emitted"));
    }

    #[test]
    fn missing_name_mapping_is_flagged() {
        let event = "pub enum TraceEvent {\n    HintFault { page: u64 },\n}\n\
                     impl TraceEvent {\n    pub fn name(self) -> &'static str {\n        \"x\"\n    }\n}\n";
        let engine = "pub fn step() { record(TraceEvent::HintFault { page: 1 }); }\n";
        let replay = "pub fn replay_counters(e: TraceEvent) {\n    match e { TraceEvent::HintFault { .. } => {} }\n}\n";
        let project = Project::from_sources(vec![
            ("crates/trace/src/event.rs".to_string(), event.to_string()),
            ("crates/os/src/engine.rs".to_string(), engine.to_string()),
            ("crates/os/src/replay.rs".to_string(), replay.to_string()),
            ("xtask/src/trace_check.rs".to_string(), "&[]".to_string()),
        ]);
        let diags = run(&project);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no `name()` mapping"));
    }
}
