//! The bench-smoke throughput regression gate.
//!
//! Compares a freshly measured `BENCH_access_path.json` against the
//! committed baseline and fails when per-element simulator throughput
//! regresses by more than the tolerance. Dependency-free on purpose: the
//! two fields it needs are pulled out of the JSON with a string scan, so
//! the gate runs on the offline CI toolchain before anything else.

/// Fraction of the baseline throughput the current run must reach.
/// Benchmarks on shared CI runners jitter; 20% headroom keeps the gate
/// about real regressions (an accidental per-element re-dispatch is a
/// multi-x slowdown) rather than noise.
pub const MIN_RATIO: f64 = 0.8;

/// Keys compared by the gate, in report order.
pub const GATED_KEYS: &[&str] = &[
    "per_element_accesses_per_sec",
    "fast_lane_accesses_per_sec",
    "interval_accesses_per_sec",
    "demand_paged_accesses_per_sec",
    "demand_populate_accesses_per_sec",
];

/// Absolute floor for the fault-around population win: the populated
/// lane must re-engage the interval engine, which shows up as at least
/// this wall-clock multiple over element-by-element demand paging
/// (ISSUE 9). Checked against the *current* run, independent of the
/// baseline, so a populated lane that quietly degenerates to the
/// per-element path fails even if both files carry the regression.
pub const MIN_POPULATE_SPEEDUP: f64 = 5.0;

/// One key's comparison outcome.
#[derive(Debug, PartialEq)]
pub struct Comparison {
    pub key: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    pub pass: bool,
}

/// Extracts the numeric value of `"key": <number>` from `json`.
///
/// Accepts integers and decimals; returns `None` when the key is absent
/// or its value is not a bare number (older baselines may predate a key,
/// which the gate treats as "not gated" rather than an error).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+' || *c == 'e'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares every gated key against the current measurement. Every gated
/// key must be present in *both* files: a key missing from the baseline
/// means the committed `BENCH_access_path.json` predates the lane and
/// must be regenerated; one missing from the current file means the
/// bench stopped reporting it. Both are errors — silent lane loss is
/// exactly what the gate exists to catch.
///
/// Beyond the relative throughput ratios, the current run's
/// `demand_populate_speedup` must clear [`MIN_POPULATE_SPEEDUP`]; the
/// floor is reported as one more `Comparison` whose `baseline` is the
/// floor itself.
pub fn compare(baseline: &str, current: &str) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    for &key in GATED_KEYS {
        let base = extract_number(baseline, key)
            .ok_or_else(|| format!("baseline is missing gated key `{key}` — regenerate it"))?;
        if base <= 0.0 {
            return Err(format!("baseline `{key}` is not positive: {base}"));
        }
        let cur = extract_number(current, key)
            .ok_or_else(|| format!("current run is missing gated key `{key}`"))?;
        let ratio = cur / base;
        out.push(Comparison { key, baseline: base, current: cur, ratio, pass: ratio >= MIN_RATIO });
    }
    let speedup = extract_number(current, "demand_populate_speedup")
        .ok_or_else(|| "current run is missing `demand_populate_speedup`".to_string())?;
    out.push(Comparison {
        key: "demand_populate_speedup",
        baseline: MIN_POPULATE_SPEEDUP,
        current: speedup,
        ratio: speedup / MIN_POPULATE_SPEEDUP,
        pass: speedup >= MIN_POPULATE_SPEEDUP,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "access_path": {
    "per_element_accesses_per_sec": 1000000,
    "fast_lane_accesses_per_sec": 30000000,
    "interval_accesses_per_sec": 90000000,
    "demand_paged_accesses_per_sec": 500000,
    "demand_populate_accesses_per_sec": 20000000,
    "demand_populate_speedup": 40.0
  }
}"#;

    fn with_rates(per: f64, lane: f64, interval: f64) -> String {
        with_rates_and_demand(per, lane, interval, 500_000.0, 20_000_000.0, 40.0)
    }

    fn with_rates_and_demand(
        per: f64,
        lane: f64,
        interval: f64,
        demand: f64,
        populate: f64,
        speedup: f64,
    ) -> String {
        format!(
            "{{\"per_element_accesses_per_sec\": {per}, \"fast_lane_accesses_per_sec\": {lane}, \
             \"interval_accesses_per_sec\": {interval}, \
             \"demand_paged_accesses_per_sec\": {demand}, \
             \"demand_populate_accesses_per_sec\": {populate}, \
             \"demand_populate_speedup\": {speedup}}}"
        )
    }

    #[test]
    fn extracts_numbers_with_varied_spacing() {
        assert_eq!(extract_number("{\"a\": 12}", "a"), Some(12.0));
        assert_eq!(extract_number("{\"a\":12.5,\"b\":1}", "a"), Some(12.5));
        assert_eq!(extract_number("{\"a\" : 3e6}", "a"), Some(3e6));
        assert_eq!(extract_number("{\"a\": null}", "a"), None);
        assert_eq!(extract_number("{}", "a"), None);
    }

    #[test]
    fn passes_at_or_above_tolerance() {
        let cur = with_rates(800_000.0, 24_000_000.0, 72_000_000.0);
        let cmp = compare(BASE, &cur).unwrap();
        // Five throughput ratios plus the populate-speedup floor.
        assert_eq!(cmp.len(), 6);
        assert!(cmp.iter().all(|c| c.pass));
    }

    #[test]
    fn fails_below_tolerance() {
        let cur = with_rates(799_999.0, 30_000_000.0, 90_000_000.0);
        let cmp = compare(BASE, &cur).unwrap();
        assert!(!cmp[0].pass);
        assert!(cmp[1].pass && cmp[2].pass);
    }

    #[test]
    fn key_missing_from_baseline_is_an_error() {
        // A baseline that predates a gated lane must be regenerated, not
        // silently skipped — that is how a lane regression would hide.
        let base = "{\"per_element_accesses_per_sec\": 1000000}";
        let cur = with_rates(1_000_000.0, 1.0, 1.0);
        let err = compare(base, &cur).unwrap_err();
        assert!(err.contains("baseline is missing gated key"));
        assert!(err.contains("fast_lane_accesses_per_sec"));
    }

    #[test]
    fn key_missing_from_current_fails() {
        let err = compare(BASE, "{}").unwrap_err();
        assert!(err.contains("missing gated key"));
    }

    #[test]
    fn empty_baseline_is_an_error() {
        assert!(compare("{}", "{}").is_err());
    }

    #[test]
    fn populate_speedup_floor_is_absolute() {
        // Even with throughput ratios healthy relative to the baseline, a
        // current speedup under the floor fails: both files carrying the
        // same degenerated lane must not pass.
        let cur = with_rates_and_demand(
            1_000_000.0,
            30_000_000.0,
            90_000_000.0,
            500_000.0,
            2_000_000.0,
            4.0,
        );
        let cmp = compare(BASE, &cur).unwrap();
        let floor = cmp.iter().find(|c| c.key == "demand_populate_speedup").unwrap();
        assert!(!floor.pass);
        assert_eq!(floor.baseline, MIN_POPULATE_SPEEDUP);
        // At or above the floor passes regardless of the baseline's value.
        let ok = with_rates_and_demand(
            1_000_000.0,
            30_000_000.0,
            90_000_000.0,
            500_000.0,
            2_500_000.0,
            5.0,
        );
        let cmp = compare(BASE, &ok).unwrap();
        assert!(cmp.iter().find(|c| c.key == "demand_populate_speedup").unwrap().pass);
        // A current file without the speedup key is an error outright.
        let missing = with_rates(1_000_000.0, 30_000_000.0, 90_000_000.0)
            .replace("\"demand_populate_speedup\": 40", "\"x\": 40");
        assert!(compare(BASE, &missing).unwrap_err().contains("demand_populate_speedup"));
    }
}
