//! The bench-smoke throughput regression gate.
//!
//! Compares a freshly measured `BENCH_access_path.json` against the
//! committed baseline and fails when per-element simulator throughput
//! regresses by more than the tolerance. Dependency-free on purpose: the
//! two fields it needs are pulled out of the JSON with a string scan, so
//! the gate runs on the offline CI toolchain before anything else.

/// Fraction of the baseline throughput the current run must reach.
/// Benchmarks on shared CI runners jitter; 20% headroom keeps the gate
/// about real regressions (an accidental per-element re-dispatch is a
/// multi-x slowdown) rather than noise.
pub const MIN_RATIO: f64 = 0.8;

/// Keys compared by the gate, in report order.
pub const GATED_KEYS: &[&str] =
    &["per_element_accesses_per_sec", "fast_lane_accesses_per_sec", "interval_accesses_per_sec"];

/// One key's comparison outcome.
#[derive(Debug, PartialEq)]
pub struct Comparison {
    pub key: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    pub pass: bool,
}

/// Extracts the numeric value of `"key": <number>` from `json`.
///
/// Accepts integers and decimals; returns `None` when the key is absent
/// or its value is not a bare number (older baselines may predate a key,
/// which the gate treats as "not gated" rather than an error).
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+' || *c == 'e'))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares every gated key present in the baseline against the current
/// measurement. A key missing from the *baseline* is skipped (first run
/// after the key was added); a key missing from the *current* file while
/// present in the baseline fails — the bench stopped reporting it.
pub fn compare(baseline: &str, current: &str) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    for &key in GATED_KEYS {
        let Some(base) = extract_number(baseline, key) else { continue };
        if base <= 0.0 {
            return Err(format!("baseline `{key}` is not positive: {base}"));
        }
        let cur = extract_number(current, key)
            .ok_or_else(|| format!("current run is missing gated key `{key}`"))?;
        let ratio = cur / base;
        out.push(Comparison { key, baseline: base, current: cur, ratio, pass: ratio >= MIN_RATIO });
    }
    if out.is_empty() {
        return Err("baseline has none of the gated throughput keys".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "access_path": {
    "per_element_accesses_per_sec": 1000000,
    "fast_lane_accesses_per_sec": 30000000,
    "interval_accesses_per_sec": 90000000
  }
}"#;

    fn with_rates(per: f64, lane: f64, interval: f64) -> String {
        format!(
            "{{\"per_element_accesses_per_sec\": {per}, \"fast_lane_accesses_per_sec\": {lane}, \"interval_accesses_per_sec\": {interval}}}"
        )
    }

    #[test]
    fn extracts_numbers_with_varied_spacing() {
        assert_eq!(extract_number("{\"a\": 12}", "a"), Some(12.0));
        assert_eq!(extract_number("{\"a\":12.5,\"b\":1}", "a"), Some(12.5));
        assert_eq!(extract_number("{\"a\" : 3e6}", "a"), Some(3e6));
        assert_eq!(extract_number("{\"a\": null}", "a"), None);
        assert_eq!(extract_number("{}", "a"), None);
    }

    #[test]
    fn passes_at_or_above_tolerance() {
        let cur = with_rates(800_000.0, 24_000_000.0, 72_000_000.0);
        let cmp = compare(BASE, &cur).unwrap();
        assert_eq!(cmp.len(), 3);
        assert!(cmp.iter().all(|c| c.pass));
    }

    #[test]
    fn fails_below_tolerance() {
        let cur = with_rates(799_999.0, 30_000_000.0, 90_000_000.0);
        let cmp = compare(BASE, &cur).unwrap();
        assert!(!cmp[0].pass);
        assert!(cmp[1].pass && cmp[2].pass);
    }

    #[test]
    fn key_missing_from_baseline_is_skipped() {
        let base = "{\"per_element_accesses_per_sec\": 1000000}";
        let cur = with_rates(1_000_000.0, 1.0, 1.0);
        let cmp = compare(base, &cur).unwrap();
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0].key, "per_element_accesses_per_sec");
    }

    #[test]
    fn key_missing_from_current_fails() {
        let err = compare(BASE, "{}").unwrap_err();
        assert!(err.contains("missing gated key"));
    }

    #[test]
    fn empty_baseline_is_an_error() {
        assert!(compare("{}", "{}").is_err());
    }
}
