//! The shared diagnostics reporter for `cargo xtask lint` and
//! `cargo xtask analyze`.
//!
//! Both tools funnel their findings into [`Diagnostic`] and render them
//! through [`render`], so CI consumes one machine-readable stream no
//! matter which checker produced it. Three formats:
//!
//! - `human` — `path:line: [tool/rule] message`, the terminal default;
//! - `json` — one flat JSON object per line (JSONL), same shape for
//!   both tools, parseable with the `minijson` helpers;
//! - `sarif` — minimal SARIF 2.1.0 for code-scanning UIs; baselined
//!   findings are emitted at level `note`, active ones at `error`.

use crate::minijson::escape;
use std::collections::BTreeSet;

/// One finding from any checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which checker produced it (`"lint"` or `"analyze"`).
    pub tool: &'static str,
    /// Rule or pass identifier (`"no-unwrap"`, `"counter-conservation"`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line; 0 when the finding is not line-anchored.
    pub line: usize,
    /// Enclosing item's qualified name, or empty.
    pub item: String,
    /// The offending token or name.
    pub token: String,
    /// Human explanation, including the fix hint.
    pub message: String,
    /// True when the finding is absorbed by the checked-in baseline
    /// (reported for visibility, not a failure).
    pub baselined: bool,
}

/// Output format selector shared by both tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Human,
    Json,
    Sarif,
}

impl Format {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "human" => Ok(Format::Human),
            "json" => Ok(Format::Json),
            "sarif" => Ok(Format::Sarif),
            other => Err(format!("unknown format `{other}` (expected human|json|sarif)")),
        }
    }
}

/// Renders diagnostics in the chosen format. The returned string ends
/// with a newline when non-empty.
pub fn render(diags: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Human => render_human(diags),
        Format::Json => render_json(diags),
        Format::Sarif => render_sarif(diags),
    }
}

fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let mark = if d.baselined { " (baselined)" } else { "" };
        let item = if d.item.is_empty() { String::new() } else { format!(" in `{}`", d.item) };
        out.push_str(&format!(
            "{}:{}: [{}/{}] {}{}{}\n",
            d.path, d.line, d.tool, d.rule, d.message, item, mark
        ));
    }
    out
}

fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{{\"tool\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"item\":\"{}\",\"token\":\"{}\",\"message\":\"{}\",\"baselined\":{}}}\n",
            escape(d.tool),
            escape(&d.rule),
            escape(&d.path),
            d.line,
            escape(&d.item),
            escape(&d.token),
            escape(&d.message),
            d.baselined,
        ));
    }
    out
}

fn render_sarif(diags: &[Diagnostic]) -> String {
    let rule_ids: BTreeSet<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
    let rules = rule_ids
        .iter()
        .map(|id| format!("{{\"id\":\"{}\"}}", escape(id)))
        .collect::<Vec<_>>()
        .join(",");
    let results = diags
        .iter()
        .map(|d| {
            let level = if d.baselined { "note" } else { "error" };
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                escape(&d.rule),
                escape(&d.message),
                escape(&d.path),
                d.line.max(1),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"tiersim-xtask\",\
         \"informationUri\":\"https://example.invalid/tiersim\",\"rules\":[{rules}]}}}},\
         \"results\":[{results}]}}]}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson::{str_field, u64_field};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                tool: "analyze",
                rule: "counter-conservation".to_string(),
                path: "crates/os/src/engine.rs".to_string(),
                line: 42,
                item: "AutoNuma::handle_fault".to_string(),
                token: "promo_no_space".to_string(),
                message: "counter `promo_no_space` has no law".to_string(),
                baselined: false,
            },
            Diagnostic {
                tool: "lint",
                rule: "no-unwrap".to_string(),
                path: "src/main.rs".to_string(),
                line: 7,
                item: String::new(),
                token: "unwrap".to_string(),
                message: "say \"why\" instead".to_string(),
                baselined: true,
            },
        ]
    }

    #[test]
    fn human_format_is_line_per_finding() {
        let out = render(&sample(), Format::Human);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("crates/os/src/engine.rs:42: [analyze/counter-conservation]"));
        assert!(lines[0].contains("in `AutoNuma::handle_fault`"));
        assert!(lines[1].ends_with("(baselined)"));
    }

    #[test]
    fn json_format_is_parseable_jsonl() {
        let out = render(&sample(), Format::Json);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(str_field(lines[0], "rule"), Some("counter-conservation"));
        assert_eq!(u64_field(lines[0], "line"), Some(42));
        assert_eq!(str_field(lines[1], "tool"), Some("lint"));
        // Escaped quotes survive the round trip.
        assert_eq!(str_field(lines[1], "message"), Some("say \\\"why\\\" instead"));
        assert!(lines[1].contains("\"baselined\":true"));
    }

    #[test]
    fn sarif_has_rules_results_and_levels() {
        let out = render(&sample(), Format::Sarif);
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("{\"id\":\"counter-conservation\"}"));
        assert!(out.contains("{\"id\":\"no-unwrap\"}"));
        assert!(out.contains("\"level\":\"error\""));
        assert!(out.contains("\"level\":\"note\""));
        assert!(out.contains("\"uri\":\"crates/os/src/engine.rs\""));
        assert!(out.contains("\"startLine\":42"));
    }

    #[test]
    fn empty_input_renders_cleanly() {
        assert_eq!(render(&[], Format::Human), "");
        assert_eq!(render(&[], Format::Json), "");
        let sarif = render(&[], Format::Sarif);
        assert!(sarif.contains("\"results\":[]"));
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("human"), Ok(Format::Human));
        assert_eq!(Format::parse("json"), Ok(Format::Json));
        assert_eq!(Format::parse("sarif"), Ok(Format::Sarif));
        assert!(Format::parse("xml").is_err());
    }
}
