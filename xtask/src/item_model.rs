//! A lightweight project-wide item model for the static analysis passes.
//!
//! Layered on the line lexer (`crate::lexer`): the blanked code of every
//! source file is tokenized, then a single forward scan extracts the
//! items the analyze passes reason about — functions (with their full
//! body token streams), structs (with field names), enums (with variant
//! names), impl blocks (qualifying their methods as `Type::method`) and
//! modules. On top of the item table sits a name-resolved call-adjacency
//! map: deliberately *over*-approximate (a method call edges to every
//! function of that name), so reachability queries never miss a real
//! path — the right default for the panic-reachability pass, where a
//! false "unreachable" would hide a crash site.
//!
//! No `syn`, no dependencies: the model must build on the same offline
//! toolchain as the rest of xtask (DESIGN.md §14).

use crate::lexer::{self, is_ident_char, CodeLine};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// What kind of item a model entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Impl,
    Mod,
}

/// One token of blanked code with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: usize,
    pub text: String,
}

/// One extracted item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Simple name (`run`, `VmCounters`).
    pub name: String,
    /// Qualified name: `Machine::run` for associated functions, else the
    /// simple name.
    pub qual: String,
    /// 1-based line of the introducing keyword.
    pub start_line: usize,
    /// 1-based line of the item's final token.
    pub end_line: usize,
    /// True when the item lives in `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// The item's token stream (signature + body), blanked code only.
    pub tokens: Vec<Token>,
    /// Struct field names or enum variant names; empty for other kinds.
    pub fields: Vec<String>,
}

/// One lexed + modeled source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw file text (for checks that need string-literal contents, which
    /// the lexer blanks — e.g. the trace schema comparison).
    pub raw: String,
    /// The lexer's per-line view (for allow-annotation lookups).
    pub lines: Vec<CodeLine>,
    /// Items extracted from this file, in source order.
    pub items: Vec<Item>,
}

/// The whole modeled project.
#[derive(Debug, Default)]
pub struct Project {
    pub files: Vec<FileModel>,
}

impl Project {
    /// Models a set of `(path, source)` pairs — the fixture-test entry
    /// point, also used by [`Project::load`].
    pub fn from_sources(sources: Vec<(String, String)>) -> Project {
        let files = sources
            .into_iter()
            .map(|(path, raw)| {
                let lines = lexer::lex(&raw);
                let items = extract_items(&lines);
                FileModel { path, raw, lines, items }
            })
            .collect();
        Project { files }
    }

    /// Loads and models every analyzable source under `root`: the crate
    /// libraries (`crates/*/src`), the root crate (`src/`), integration
    /// tests (`tests/`) and xtask itself (`xtask/src`, needed so the
    /// trace-coverage pass can read the `trace-check` schema). `vendor/`
    /// and `target/` are never scanned.
    pub fn load(root: &Path) -> Result<Project, String> {
        let mut paths = Vec::new();
        let crates = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates) {
            let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                walk(&dir.join("src"), &mut paths);
            }
        }
        walk(&root.join("src"), &mut paths);
        walk(&root.join("tests"), &mut paths);
        walk(&root.join("xtask").join("src"), &mut paths);
        paths.sort();
        let mut sources = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = relative(&path, root);
            let raw =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {rel}: {e}"))?;
            sources.push((rel, raw));
        }
        Ok(Project::from_sources(sources))
    }

    /// All items across the project.
    pub fn items(&self) -> impl Iterator<Item = (&FileModel, &Item)> {
        self.files.iter().flat_map(|f| f.items.iter().map(move |i| (f, i)))
    }

    /// The first item with this kind and simple name, if any.
    pub fn find_item(&self, kind: ItemKind, name: &str) -> Option<(&FileModel, &Item)> {
        self.items().find(|(_, i)| i.kind == kind && i.name == name)
    }

    /// The file at `path`, if modeled.
    pub fn file(&self, path: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Builds the call-adjacency map over all non-test functions: edges
    /// from a function's qualified name to the qualified names of every
    /// function it may call (name-resolved, over-approximate).
    pub fn call_map(&self) -> CallMap {
        let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut by_qual: BTreeSet<&str> = BTreeSet::new();
        for (_, item) in self.items() {
            if item.kind == ItemKind::Fn {
                by_name.entry(&item.name).or_default().push(&item.qual);
                by_qual.insert(&item.qual);
            }
        }
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (_, item) in self.items() {
            if item.kind != ItemKind::Fn || item.in_test {
                continue;
            }
            let out = edges.entry(item.qual.clone()).or_default();
            let impl_ty = item.qual.split("::").next().filter(|_| item.qual.contains("::"));
            for callee in called_names(&item.tokens, impl_ty) {
                match callee {
                    Callee::Qualified(q) => {
                        if by_qual.contains(q.as_str()) {
                            out.insert(q);
                        } else if let Some(simple) = q.split("::").nth(1) {
                            // Unknown receiver type (foreign crate path):
                            // fall back to every function of that name.
                            for target in by_name.get(simple).into_iter().flatten() {
                                out.insert((*target).to_string());
                            }
                        }
                    }
                    Callee::Named(n) => {
                        for target in by_name.get(n.as_str()).into_iter().flatten() {
                            out.insert((*target).to_string());
                        }
                    }
                }
            }
        }
        CallMap { edges }
    }
}

/// The project call-adjacency map.
#[derive(Debug)]
pub struct CallMap {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallMap {
    /// Direct callees of `qual` (empty if unknown).
    pub fn callees(&self, qual: &str) -> impl Iterator<Item = &str> {
        self.edges.get(qual).into_iter().flatten().map(String::as_str)
    }

    /// Every function reachable from the given roots, roots included.
    /// A root matches items by qualified name, or by simple name when it
    /// contains no `::`.
    pub fn reachable(&self, roots: &[&str]) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = Vec::new();
        for root in roots {
            if root.contains("::") {
                if self.edges.contains_key(*root) {
                    queue.push((*root).to_string());
                }
            } else {
                for qual in self.edges.keys() {
                    let simple = qual.rsplit("::").next().unwrap_or(qual);
                    if simple == *root {
                        queue.push(qual.clone());
                    }
                }
            }
        }
        while let Some(q) = queue.pop() {
            if !seen.insert(q.clone()) {
                continue;
            }
            for callee in self.callees(&q) {
                if !seen.contains(callee) {
                    queue.push(callee.to_string());
                }
            }
        }
        seen
    }
}

/// How a call site names its target.
enum Callee {
    /// `A::b(...)` — receiver type known.
    Qualified(String),
    /// `b(...)` or `.b(...)` — resolved by simple name.
    Named(String),
}

/// Rust keywords that can directly precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// True for identifiers that are Rust keywords (callable names excluded).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Extracts the names every call site in `tokens` may target.
/// `impl_ty` resolves `Self::` and `self.`-free associated calls.
fn called_names(tokens: &[Token], impl_ty: Option<&str>) -> Vec<Callee> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let name = &tokens[i].text;
        if !name.chars().next().is_some_and(is_ident_char) || is_keyword(name) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| tokens[j].text.as_str());
        match prev {
            Some("::") => {
                let recv = i.checked_sub(2).map(|j| tokens[j].text.as_str()).unwrap_or("");
                let recv = if recv == "Self" { impl_ty.unwrap_or(recv) } else { recv };
                if recv.chars().next().is_some_and(is_ident_char) {
                    out.push(Callee::Qualified(format!("{recv}::{name}")));
                } else {
                    out.push(Callee::Named(name.clone()));
                }
            }
            // Macro invocations (`name!(`) are not function calls; the
            // panic pass matches them separately.
            Some("!") => {}
            _ => out.push(Callee::Named(name.clone())),
        }
    }
    out
}

/// Tokenizes blanked code: identifiers, two-char operators, single chars.
/// Whitespace is dropped; every token keeps its 1-based line.
pub fn tokenize(lines: &[CodeLine]) -> Vec<Token> {
    const TWO_CHAR: &[&str] = &[
        "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
        "&&", "||", "<<", ">>", "..",
    ];
    let mut out = Vec::new();
    for line in lines {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if is_ident_char(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Token { line: line.number, text: chars[start..i].iter().collect() });
            } else {
                let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                if TWO_CHAR.contains(&pair.as_str()) {
                    out.push(Token { line: line.number, text: pair });
                    i += 2;
                } else {
                    out.push(Token { line: line.number, text: c.to_string() });
                    i += 1;
                }
            }
        }
    }
    out
}

/// The item extractor: one forward scan with explicit brace tracking.
fn extract_items(lines: &[CodeLine]) -> Vec<Item> {
    let tokens = tokenize(lines);
    let mut out = Vec::new();
    scan_items(&tokens, &mut 0, tokens.len(), None, lines, &mut out);
    out
}

/// Scans `tokens[*i..end]` for items; recurses into impl/mod/trait
/// blocks (where more items live) but not into fn bodies (whose content
/// belongs to the fn's own stream).
fn scan_items(
    tokens: &[Token],
    i: &mut usize,
    end: usize,
    impl_ty: Option<&str>,
    lines: &[CodeLine],
    out: &mut Vec<Item>,
) {
    while *i < end {
        let t = &tokens[*i];
        match t.text.as_str() {
            "fn" => {
                if let Some(item) = parse_fn(tokens, i, end, impl_ty, lines) {
                    out.push(item);
                } else {
                    *i += 1;
                }
            }
            "struct" | "enum" => {
                let kind = if t.text == "struct" { ItemKind::Struct } else { ItemKind::Enum };
                if let Some(item) = parse_type(tokens, i, end, kind, lines) {
                    out.push(item);
                } else {
                    *i += 1;
                }
            }
            "impl" => {
                if let Some((name, body_start, body_end)) = parse_block_header(tokens, *i, end) {
                    out.push(mk_item(ItemKind::Impl, &name, None, tokens, *i, body_end, lines));
                    *i = body_start + 1;
                    scan_items(tokens, i, body_end, Some(&name), lines, out);
                    *i = body_end + 1;
                } else {
                    *i += 1;
                }
            }
            "mod" | "trait" => {
                if let Some((name, body_start, body_end)) = parse_block_header(tokens, *i, end) {
                    if t.text == "mod" {
                        out.push(mk_item(ItemKind::Mod, &name, None, tokens, *i, body_end, lines));
                    }
                    *i = body_start + 1;
                    // Items inside a mod/trait keep the enclosing impl
                    // qualification (none).
                    scan_items(tokens, i, body_end, None, lines, out);
                    *i = body_end + 1;
                } else {
                    *i += 1;
                }
            }
            "{" => {
                // A stray block (e.g. a const initializer): skip it whole.
                let close = matching_brace(tokens, *i, end);
                *i = close + 1;
            }
            "}" => {
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Builds an item spanning `tokens[start..=body_end]`.
fn mk_item(
    kind: ItemKind,
    name: &str,
    impl_ty: Option<&str>,
    tokens: &[Token],
    start: usize,
    end_idx: usize,
    lines: &[CodeLine],
) -> Item {
    let start_line = tokens[start].line;
    let end_line = tokens[end_idx.min(tokens.len() - 1)].line;
    let qual = match impl_ty {
        Some(ty) => format!("{ty}::{name}"),
        None => name.to_string(),
    };
    let in_test = lines.get(start_line - 1).map(|l| l.in_test).unwrap_or(false);
    Item {
        kind,
        name: name.to_string(),
        qual,
        start_line,
        end_line,
        in_test,
        tokens: tokens[start..=end_idx.min(tokens.len() - 1)].to_vec(),
        fields: Vec::new(),
    }
}

/// Parses `fn name ... { body }` (or `fn name ...;`) starting at the `fn`
/// keyword; advances `*i` past the item.
fn parse_fn(
    tokens: &[Token],
    i: &mut usize,
    end: usize,
    impl_ty: Option<&str>,
    lines: &[CodeLine],
) -> Option<Item> {
    let start = *i;
    let name = tokens.get(start + 1).filter(|t| !is_keyword(&t.text))?.text.clone();
    if !name.chars().next().is_some_and(is_ident_char) {
        return None;
    }
    // Find the body `{` (or a terminating `;`) at paren depth 0.
    let mut j = start + 2;
    let mut paren = 0i64;
    while j < end {
        match tokens[j].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => {
                let close = matching_brace(tokens, j, end);
                let item = mk_item(ItemKind::Fn, &name, impl_ty, tokens, start, close, lines);
                *i = close + 1;
                return Some(item);
            }
            ";" if paren == 0 => {
                let item = mk_item(ItemKind::Fn, &name, impl_ty, tokens, start, j, lines);
                *i = j + 1;
                return Some(item);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a struct or enum declaration starting at its keyword; collects
/// field or variant names; advances `*i` past the item.
fn parse_type(
    tokens: &[Token],
    i: &mut usize,
    end: usize,
    kind: ItemKind,
    lines: &[CodeLine],
) -> Option<Item> {
    let start = *i;
    let name = tokens.get(start + 1).filter(|t| !is_keyword(&t.text))?.text.clone();
    if !name.chars().next().is_some_and(is_ident_char) {
        return None;
    }
    // Find the body `{` or the `;` ending a tuple/unit struct, at
    // paren/bracket depth 0 (where clauses contain neither braces nor
    // semicolons).
    let mut j = start + 2;
    let mut nest = 0i64;
    while j < end {
        match tokens[j].text.as_str() {
            "(" | "[" => nest += 1,
            ")" | "]" => nest -= 1,
            "{" if nest == 0 => {
                let close = matching_brace(tokens, j, end);
                let mut item = mk_item(kind, &name, None, tokens, start, close, lines);
                item.fields = match kind {
                    ItemKind::Struct => struct_fields(&tokens[j..=close]),
                    _ => enum_variants(&tokens[j..=close]),
                };
                *i = close + 1;
                return Some(item);
            }
            ";" if nest == 0 => {
                let item = mk_item(kind, &name, None, tokens, start, j, lines);
                *i = j + 1;
                return Some(item);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses `impl ... {`, `mod name {` or `trait Name {` headers starting
/// at the keyword. Returns `(name, body-open index, body-close index)`;
/// `None` for bodyless forms (`mod name;`). For `impl` the name is the
/// Self type: the first path segment after `for`, or after `impl`
/// (skipping one balanced `<...>` generics group).
fn parse_block_header(
    tokens: &[Token],
    start: usize,
    end: usize,
) -> Option<(String, usize, usize)> {
    let mut j = start + 1;
    // Skip a generics group directly after the keyword (`impl<T> ...`).
    if tokens.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 0i64;
        while j < end {
            match tokens[j].text.as_str() {
                "<" | "<<" => angle += 1,
                ">" | ">>" => angle -= if tokens[j].text == ">>" { 2 } else { 1 },
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    let mut name: Option<String> = None;
    let mut after_for = false;
    while j < end {
        match tokens[j].text.as_str() {
            "{" => {
                let close = matching_brace(tokens, j, end);
                return name.map(|n| (n, j, close));
            }
            ";" => return None,
            "for" => {
                after_for = true;
                name = None;
            }
            // First path segment of the (current) type wins; later
            // segments/generic params don't overwrite it.
            word if word.chars().next().is_some_and(is_ident_char)
                && !is_keyword(word)
                && (name.is_none() || after_for) =>
            {
                name = Some(word.to_string());
                after_for = false;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or `end - 1` if the
/// stream is truncated).
fn matching_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().take(end).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    end.saturating_sub(1)
}

/// Field names of a struct body (`tokens[0]` is the opening `{`): idents
/// directly followed by `:` at brace depth 1, outside parens/brackets.
fn struct_fields(tokens: &[Token]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut brace = 0i64;
    let mut nest = 0i64;
    for (k, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => brace -= 1,
            "(" | "[" => nest += 1,
            ")" | "]" => nest -= 1,
            word if brace == 1
                && nest == 0
                && word.chars().next().is_some_and(is_ident_char)
                && !is_keyword(word)
                && tokens.get(k + 1).map(|t| t.text.as_str()) == Some(":") =>
            {
                fields.push(word.to_string());
            }
            _ => {}
        }
    }
    fields
}

/// Variant names of an enum body: idents at brace depth 1 (outside
/// parens/brackets) whose previous token is `{`, `,` or an attribute's
/// closing `]`.
fn enum_variants(tokens: &[Token]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut brace = 0i64;
    let mut nest = 0i64;
    for (k, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => brace -= 1,
            "(" | "[" => nest += 1,
            ")" | "]" => nest -= 1,
            word if brace == 1
                && nest == 0
                && word.chars().next().is_some_and(is_ident_char)
                && !is_keyword(word) =>
            {
                let prev = k.checked_sub(1).map(|j| tokens[j].text.as_str());
                if matches!(prev, Some("{") | Some(",") | Some("]")) {
                    variants.push(word.to_string());
                }
            }
            _ => {}
        }
    }
    variants
}

/// Recursively gathers `.rs` files under `dir`, depth-first, sorted.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes.
fn relative(file: &Path, root: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project(src: &str) -> Project {
        Project::from_sources(vec![("crates/x/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn extracts_free_and_associated_fns() {
        let p = project(
            "pub fn alpha() { beta(); }\n\
             fn beta() {}\n\
             struct Machine;\n\
             impl Machine {\n    pub fn run(&mut self) { self.step(); }\n    fn step(&self) {}\n}\n",
        );
        let quals: Vec<&str> = p
            .items()
            .filter(|(_, i)| i.kind == ItemKind::Fn)
            .map(|(_, i)| i.qual.as_str())
            .collect();
        assert_eq!(quals, vec!["alpha", "beta", "Machine::run", "Machine::step"]);
        let (_, run) = p.find_item(ItemKind::Fn, "run").unwrap();
        assert_eq!(run.qual, "Machine::run");
        assert!(run.tokens.iter().any(|t| t.text == "step"));
    }

    #[test]
    fn extracts_struct_fields_and_enum_variants() {
        let p = project(
            "pub struct VmCounters {\n    pub numa_hint_faults: u64,\n    pub pgalloc_dram: u64,\n}\n\
             pub enum TraceEvent {\n    HintFault { page: u64 },\n    PromoteAccept { page: u64 },\n    ReclaimStall { cycles: u64 },\n}\n",
        );
        let (_, s) = p.find_item(ItemKind::Struct, "VmCounters").unwrap();
        assert_eq!(s.fields, vec!["numa_hint_faults", "pgalloc_dram"]);
        let (_, e) = p.find_item(ItemKind::Enum, "TraceEvent").unwrap();
        assert_eq!(e.fields, vec!["HintFault", "PromoteAccept", "ReclaimStall"]);
    }

    #[test]
    fn enum_variant_payload_fields_are_not_variants() {
        let p = project("enum E {\n    A { x: u64, y: u64 },\n    B(u64),\n    C,\n}\n");
        let (_, e) = p.find_item(ItemKind::Enum, "E").unwrap();
        assert_eq!(e.fields, vec!["A", "B", "C"]);
    }

    #[test]
    fn impl_for_uses_self_type_and_generics_are_skipped() {
        let p = project(
            "impl<T: Clone> Display for Wrapper<T> {\n    fn fmt(&self) {}\n}\n\
             impl Plain {\n    fn go() {}\n}\n",
        );
        let quals: Vec<&str> = p
            .items()
            .filter(|(_, i)| i.kind == ItemKind::Fn)
            .map(|(_, i)| i.qual.as_str())
            .collect();
        assert_eq!(quals, vec!["Wrapper::fmt", "Plain::go"]);
    }

    #[test]
    fn test_items_are_marked() {
        let p = project(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { lib(); }\n}\n",
        );
        let (_, lib) = p.find_item(ItemKind::Fn, "lib").unwrap();
        assert!(!lib.in_test);
        let (_, t) = p.find_item(ItemKind::Fn, "t").unwrap();
        assert!(t.in_test);
    }

    #[test]
    fn call_map_resolves_qualified_method_and_free_calls() {
        let p = project(
            "fn root() { Machine::run(); helper(); }\n\
             fn helper() { x.step(); }\n\
             struct Machine;\n\
             impl Machine {\n    fn run() { Self::inner(); }\n    fn inner() {}\n    fn step(&self) { deep(); }\n}\n\
             fn deep() { panic_site(); }\n\
             fn panic_site() {}\n\
             fn unrelated() {}\n",
        );
        let map = p.call_map();
        let reach = map.reachable(&["root"]);
        for f in [
            "root",
            "helper",
            "Machine::run",
            "Machine::inner",
            "Machine::step",
            "deep",
            "panic_site",
        ] {
            assert!(reach.contains(f), "{f} should be reachable: {reach:?}");
        }
        assert!(!reach.contains("unrelated"));
    }

    #[test]
    fn call_map_ignores_macros_and_test_fns() {
        let p = project(
            "fn root() { println!(\"x\"); }\n\
             fn println_helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { secret(); }\n}\n\
             fn secret() {}\n",
        );
        let map = p.call_map();
        let reach = map.reachable(&["root"]);
        assert!(!reach.contains("secret"), "test-only edges must not exist");
        assert!(!reach.contains("println_helper"), "macro is not a call");
    }

    #[test]
    fn reachable_accepts_qualified_roots() {
        let p = project(
            "struct M;\nimpl M {\n    fn run() { leaf(); }\n}\nfn leaf() {}\nfn other() {}\n",
        );
        let map = p.call_map();
        let reach = map.reachable(&["M::run"]);
        assert!(reach.contains("leaf"));
        assert!(!reach.contains("other"));
    }

    #[test]
    fn trait_method_decls_and_tuple_structs_parse() {
        let p = project(
            "trait T {\n    fn decl(&self);\n    fn with_default(&self) { decl_helper(); }\n}\n\
             fn decl_helper() {}\n\
             struct Tuple(u64, u64);\n",
        );
        assert!(p.find_item(ItemKind::Fn, "decl").is_some());
        assert!(p.find_item(ItemKind::Fn, "with_default").is_some());
        let (_, t) = p.find_item(ItemKind::Struct, "Tuple").unwrap();
        assert!(t.fields.is_empty());
    }
}
