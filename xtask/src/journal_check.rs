//! `cargo xtask journal-check <file.jsonl>`: schema + checksum validation
//! for the crash-safe sweep journal written by `repro_all --resume`
//! (DESIGN.md §13).
//!
//! A standalone mirror of `tiersim_core::journal` — FNV-1a64 and field
//! extraction from the shared [`crate::minijson`] helpers, zero
//! dependencies — so the offline CI toolchain can verify a journal
//! artifact without building the workspace first:
//!
//! - every line is `{core,"crc":"<hex16>"}` and the FNV-1a64 of the core
//!   bytes matches the recorded crc;
//! - the first record is a `meta` carrying the schema version and sweep
//!   fingerprint; `meta` never appears again;
//! - `seq` is strictly increasing;
//! - record kinds come from the known vocabulary and carry their
//!   required fields;
//! - a torn **final** line (a crash mid-append) is tolerated with a
//!   notice; any earlier invalid line is corruption and fails the check.

use crate::minijson::{fnv1a64, str_field, u64_field};

/// What a clean (or tolerably torn) journal looks like.
#[derive(Debug, PartialEq, Eq)]
pub struct JournalSummary {
    /// Complete, validated records.
    pub records: usize,
    /// The sweep fingerprint from the meta record.
    pub fingerprint: String,
    /// `true` if the final line was torn (crash mid-append) and ignored.
    pub torn_tail: bool,
}

/// Validates a journal. Returns the summary, or the first problem as
/// `(1-based line, message)`.
pub fn check_journal(text: &str) -> Result<JournalSummary, (usize, String)> {
    if text.is_empty() {
        return Err((0, "empty journal file".to_string()));
    }
    // Work on raw chunks (not `lines()`): a missing trailing newline on
    // the last chunk is exactly the torn-append signature.
    let chunks: Vec<&str> = text.split_inclusive('\n').collect();
    let mut summary = JournalSummary { records: 0, fingerprint: String::new(), torn_tail: false };
    let mut prev_seq: Option<u64> = None;
    for (idx, chunk) in chunks.iter().enumerate() {
        let n = idx + 1;
        let is_last = n == chunks.len();
        let complete = chunk.ends_with('\n');
        let line = chunk.trim_end_matches(['\n', '\r']);
        let core = match verify_crc(line) {
            Some(core) if complete => core,
            _ if is_last => {
                // Incomplete or checksum-less final line: a crash landed
                // mid-append. The writer truncates it away on resume.
                summary.torn_tail = true;
                break;
            }
            _ => return Err((n, "bad checksum or malformed line".to_string())),
        };
        let err = |msg: &str| (n, msg.to_string());
        let version = u64_field(core, "v").ok_or_else(|| err("missing numeric `v` field"))?;
        if version != 1 {
            return Err((n, format!("unsupported journal version {version}")));
        }
        let seq = u64_field(core, "seq").ok_or_else(|| err("missing numeric `seq` field"))?;
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err((n, format!("seq went {prev} -> {seq}, must strictly increase")));
            }
        }
        prev_seq = Some(seq);
        let kind = str_field(core, "kind").ok_or_else(|| err("missing string `kind` field"))?;
        if (kind == "meta") != (n == 1) {
            return Err((n, "meta must be exactly the first record".to_string()));
        }
        let require_u64 = |name: &str| {
            u64_field(core, name)
                .map(|_| ())
                .ok_or((n, format!("`{kind}` record missing numeric `{name}`")))
        };
        let require_str = |name: &str| {
            str_field(core, name)
                .map(|_| ())
                .ok_or((n, format!("`{kind}` record missing string `{name}`")))
        };
        match kind {
            "meta" => {
                summary.fingerprint = str_field(core, "fingerprint")
                    .ok_or_else(|| err("meta record missing string `fingerprint`"))?
                    .to_string();
            }
            "start" => {
                require_str("cell")?;
                require_str("name")?;
                require_u64("attempt")?;
            }
            "done" => {
                require_str("cell")?;
                require_u64("attempt")?;
                require_str("payload")?;
            }
            "fail" => {
                require_str("cell")?;
                require_u64("attempt")?;
                require_str("class")?;
                require_str("error")?;
            }
            "quarantine" => {
                require_str("cell")?;
                require_u64("attempts")?;
                require_str("error")?;
            }
            other => return Err((n, format!("unknown record kind `{other}`"))),
        }
        summary.records += 1;
    }
    if summary.records == 0 {
        return Err((1, "journal has no complete records".to_string()));
    }
    Ok(summary)
}

/// Splits `{core,"crc":"hex16"}` and verifies the checksum, returning the
/// core bytes. Mirrors `tiersim_core::journal`'s private helper.
fn verify_crc(line: &str) -> Option<&str> {
    let rest = line.strip_prefix('{')?;
    let marker = ",\"crc\":\"";
    let pos = rest.rfind(marker)?;
    let core = &rest[..pos];
    let crc = rest[pos + marker.len()..].strip_suffix("\"}")?;
    if crc.len() != 16 {
        return None;
    }
    if format!("{:016x}", fnv1a64(core.as_bytes())) == crc {
        Some(core)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a valid journal line the way the writer does.
    fn line(core: &str) -> String {
        format!("{{{core},\"crc\":\"{:016x}\"}}\n", fnv1a64(core.as_bytes()))
    }

    fn good() -> String {
        let mut s = String::new();
        s.push_str(&line("\"v\":1,\"seq\":0,\"kind\":\"meta\",\"fingerprint\":\"scale=10\""));
        s.push_str(&line(
            "\"v\":1,\"seq\":1,\"kind\":\"start\",\"cell\":\"ab\",\"name\":\"c1\",\"attempt\":1",
        ));
        s.push_str(&line(
            "\"v\":1,\"seq\":2,\"kind\":\"done\",\"cell\":\"ab\",\"attempt\":1,\"payload\":\"p\\\"x\"",
        ));
        s.push_str(&line(
            "\"v\":1,\"seq\":3,\"kind\":\"fail\",\"cell\":\"cd\",\"attempt\":1,\"class\":\"stuck\",\"error\":\"e\"",
        ));
        s.push_str(&line(
            "\"v\":1,\"seq\":4,\"kind\":\"quarantine\",\"cell\":\"cd\",\"attempts\":3,\"error\":\"e\"",
        ));
        s
    }

    #[test]
    fn accepts_well_formed_journal() {
        let summary = check_journal(&good()).expect("valid journal");
        assert_eq!(summary.records, 5);
        assert_eq!(summary.fingerprint, "scale=10");
        assert!(!summary.torn_tail);
    }

    #[test]
    fn tolerates_torn_final_line_with_notice() {
        let mut text = good();
        text.push_str("{\"v\":1,\"seq\":5,\"kind\":\"sta");
        let summary = check_journal(&text).expect("torn tail tolerated");
        assert_eq!(summary.records, 5);
        assert!(summary.torn_tail);
    }

    #[test]
    fn rejects_mid_file_corruption_and_bad_crc() {
        let mut flipped = good();
        // Flip one payload byte in the middle: crc no longer matches.
        let at = flipped.find("p\\\"x").unwrap();
        flipped.replace_range(at..at + 1, "q");
        assert_eq!(check_journal(&flipped).unwrap_err().0, 3);

        let truncated_middle = good().replacen("\"kind\":\"start\"", "\"kind\":\"sta", 1);
        assert!(check_journal(&truncated_middle).is_err());
    }

    #[test]
    fn rejects_schema_violations() {
        assert_eq!(check_journal("").unwrap_err().0, 0);
        // No meta first.
        let headless = good().lines().skip(1).map(|l| format!("{l}\n")).collect::<String>();
        assert!(check_journal(&headless).unwrap_err().1.contains("meta"));
        // Duplicate meta later.
        let mut twice = good();
        twice.push_str(&line("\"v\":1,\"seq\":9,\"kind\":\"meta\",\"fingerprint\":\"x\""));
        assert!(check_journal(&twice).unwrap_err().1.contains("meta"));
        // Broken seq ordering (rebuilt with valid checksums so the line
        // reaches the seq check).
        let rebuilt = line("\"v\":1,\"seq\":0,\"kind\":\"meta\",\"fingerprint\":\"f\"")
            + &line(
                "\"v\":1,\"seq\":0,\"kind\":\"start\",\"cell\":\"a\",\"name\":\"n\",\"attempt\":1",
            );
        assert!(check_journal(&rebuilt).unwrap_err().1.contains("strictly increase"));
        // Unknown kind.
        let unknown = line("\"v\":1,\"seq\":0,\"kind\":\"meta\",\"fingerprint\":\"f\"")
            + &line("\"v\":1,\"seq\":1,\"kind\":\"mystery\",\"cell\":\"a\"");
        assert!(check_journal(&unknown).unwrap_err().1.contains("unknown record kind"));
        // Wrong version.
        let v2 = line("\"v\":2,\"seq\":0,\"kind\":\"meta\",\"fingerprint\":\"f\"")
            + "{\"v\":1,\"seq\":1";
        assert!(check_journal(&v2).unwrap_err().1.contains("version"));
        // Missing required field.
        let no_payload = line("\"v\":1,\"seq\":0,\"kind\":\"meta\",\"fingerprint\":\"f\"")
            + &line("\"v\":1,\"seq\":1,\"kind\":\"done\",\"cell\":\"a\",\"attempt\":1")
            + &line(
                "\"v\":1,\"seq\":2,\"kind\":\"start\",\"cell\":\"a\",\"name\":\"n\",\"attempt\":2",
            );
        assert!(check_journal(&no_payload).unwrap_err().1.contains("payload"));
    }

    #[test]
    fn escaped_quotes_in_strings_are_handled() {
        assert_eq!(
            str_field("\"error\":\"a \\\"quoted\\\" msg\",\"x\":1", "error"),
            Some("a \\\"quoted\\\" msg")
        );
        assert_eq!(str_field("\"k\":\"unterminated", "k"), None);
    }
}
