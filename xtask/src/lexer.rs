//! A small line lexer for Rust sources.
//!
//! The lint pass needs three things per line: the code with comment and
//! string/char-literal *contents* blanked out (so tokens inside strings or
//! docs never trigger rules), the comment text (so allow-annotations can be
//! found), and whether the line sits inside test-only code (a `#[cfg(test)]`
//! module or a `#[test]` function). No full parser is needed for that —
//! and the build must stay offline-capable, so `syn` is off the table.

/// One source line, pre-digested for the rules engine.
#[derive(Debug, Clone)]
pub struct CodeLine {
    /// 1-based line number.
    pub number: usize,
    /// Line content with comments removed and string/char contents blanked.
    pub code: String,
    /// Comment text found on this line (line + block comments, doc comments).
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
}

/// Lexer state that survives across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside a (possibly nested) block comment.
    BlockComment(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string literal with this many `#`s.
    RawStr(u32),
}

/// Splits `src` into [`CodeLine`]s.
pub fn lex(src: &str) -> Vec<CodeLine> {
    let mut mode = Mode::Code;
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let (code, comment, next) = lex_line(line, mode);
        mode = next;
        out.push(CodeLine { number: idx + 1, code, comment, in_test: false });
    }
    mark_test_regions(&mut out);
    out
}

/// Lexes one line starting in `mode`; returns (code, comment, end mode).
fn lex_line(line: &str, mut mode: Mode) -> (String, String, Mode) {
    let bytes: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    comment.push_str(&line[byte_offset(&bytes, i + 2)..]);
                    break;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_opens(&bytes, i) {
                    // Emit the opening `r##"` so token boundaries survive.
                    for _ in 0..(raw_prefix_len(&bytes, i) + hashes as usize + 1) {
                        code.push(' ');
                    }
                    code.push('"');
                    mode = Mode::RawStr(hashes);
                    i += raw_prefix_len(&bytes, i) + hashes as usize + 1;
                } else if c == '\'' {
                    // Char literal or lifetime. `'\...'` and `'x'` are
                    // literals; anything else (`'a`, `'static`) is a
                    // lifetime and stays as code.
                    if next == Some('\\') {
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..=j.min(bytes.len() - 1) {
                            code.push(' ');
                        }
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        code.push_str("   ");
                        i += 3;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment.trim().to_string(), mode)
}

/// Byte offset of the `idx`-th char in the original line.
fn byte_offset(chars: &[char], idx: usize) -> usize {
    chars[..idx.min(chars.len())].iter().map(|c| c.len_utf8()).sum()
}

/// Does `r`/`br` at `i` open a raw string? Returns the `#` count.
fn raw_string_opens(chars: &[char], i: usize) -> Option<u32> {
    let start = if chars[i] == 'r' {
        i
    } else if chars[i] == 'b' && chars.get(i + 1) == Some(&'r') {
        i + 1
    } else {
        return None;
    };
    // `r` must not be part of a longer identifier (e.g. `for`, `var`).
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = start + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length of the `r` / `br` prefix for a raw string opening at `i`.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    if chars[i] == 'b' {
        2
    } else {
        1
    }
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// True for characters that can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks lines inside `#[cfg(test)]` items and `#[test]` functions.
///
/// Heuristic but reliable for rustfmt'd code: after a test attribute, the
/// next `{` opens a region that lasts until brace depth returns to the
/// level where the attribute appeared. A `;` first (e.g. `#[cfg(test)]
/// mod tests;`) cancels the pending attribute.
fn mark_test_regions(lines: &mut [CodeLine]) {
    let mut depth: i64 = 0;
    let mut pending: Option<i64> = None;
    let mut test_until: Option<i64> = None;
    for line in lines.iter_mut() {
        let started_in_test = test_until.is_some();
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[test]")
            || line.code.contains("cfg(test)")
        {
            pending.get_or_insert(depth);
        }
        let mut entered = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if let Some(d) = pending {
                        if test_until.is_none() && depth == d {
                            test_until = Some(d);
                            entered = true;
                        }
                        pending = None;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until == Some(depth) {
                        test_until = None;
                    }
                }
                ';' => {
                    if let Some(d) = pending {
                        if depth == d {
                            pending = None;
                        }
                    }
                }
                _ => {}
            }
        }
        line.in_test = started_in_test || test_until.is_some() || entered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_text() {
        let l = lex("let x = 1; // note .unwrap() here");
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].comment.contains("unwrap"));
    }

    #[test]
    fn blanks_string_contents() {
        let l = lex("let s = \"call .unwrap() now\";");
        assert!(!l[0].code.contains("unwrap"));
        assert!(l[0].code.contains('"'));
    }

    #[test]
    fn block_comments_span_lines() {
        let l = lex("/* start\n .unwrap()\n end */ let x = 1;");
        assert!(!l[1].code.contains("unwrap"));
        assert!(l[1].comment.contains("unwrap"));
        assert!(l[2].code.contains("let x"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let l = lex("let s = r#\"a \"quoted\" .unwrap()\"#;");
        assert!(!l[0].code.contains("unwrap"), "{}", l[0].code);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("fn f<'a>(c: char) -> bool { c == '\"' || c == 'x' }");
        assert!(l[0].code.contains("'a"));
        assert!(!l[0].code.contains("'x'"));
        // The quote char literal must not open a string.
        assert!(l[0].code.contains("bool"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let l = lex(src);
        assert!(!l[0].in_test);
        assert!(l[3].in_test, "inside test mod");
        assert!(!l[5].in_test, "after test mod");
    }

    #[test]
    fn cfg_test_on_use_does_not_open_region() {
        let src = "#[cfg(test)]\nuse std::x;\nfn real() {\n    body();\n}\n";
        let l = lex(src);
        assert!(!l[3].in_test);
    }
}
