//! Workspace automation tasks. Run as `cargo xtask <task>`.
//!
//! Tasks:
//! - `lint` — the tiersim determinism lint pass (DESIGN.md §9);
//! - `analyze` — the project-wide contract analyzer: counter-conservation,
//!   trace-coverage and panic-reachability passes (DESIGN.md §14);
//! - `trace-check` — schema validation for `repro_all --trace` JSONL
//!   artifacts (DESIGN.md §11);
//! - `journal-check` — schema + checksum validation for the crash-safe
//!   sweep journal written by `repro_all --resume` (DESIGN.md §13);
//! - `bench-gate` — throughput regression gate over
//!   `BENCH_access_path.json` (DESIGN.md §12).
//!
//! All are dependency-free on purpose — CI runs them on an offline
//! toolchain before anything else. `lint` and `analyze` report through
//! the shared `diag` reporter (`--format human|json|sarif`).

mod analyze;
mod bench_gate;
mod diag;
mod item_model;
mod journal_check;
mod lexer;
mod minijson;
mod rules;
mod trace_check;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("trace-check") => trace_check_cmd(&args[1..]),
        Some("journal-check") => journal_check_cmd(&args[1..]),
        Some("bench-gate") => bench_gate_cmd(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <lint [--list] [--format F] | analyze [--list] [--format F] \
         [--baseline FILE] [--write-baseline] | trace-check FILE.jsonl | \
         journal-check FILE.jsonl | bench-gate BASELINE CURRENT>"
    );
    eprintln!();
    eprintln!("tasks:");
    eprintln!("  lint                         run the determinism lint pass over the workspace");
    eprintln!("  lint --list                  print the lint rule ids and exit");
    eprintln!("  analyze                      run the contract analyzer (DESIGN.md §14)");
    eprintln!("  analyze --list               print the analyze pass ids and exit");
    eprintln!("  analyze --baseline FILE      use FILE instead of ANALYZE_BASELINE.txt");
    eprintln!("  analyze --write-baseline     regenerate the baseline from current findings");
    eprintln!("  trace-check FILE             validate a `repro_all --trace` JSONL artifact");
    eprintln!("  journal-check FILE           validate a `repro_all --resume` sweep journal");
    eprintln!("  bench-gate BASELINE CURRENT  fail if access-path throughput in CURRENT");
    eprintln!("                               drops >20% below the BASELINE json");
    eprintln!();
    eprintln!("  --format human|json|sarif    output format for lint and analyze (default human)");
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let mut format = diag::Format::Human;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for (name, what) in analyze::PASSES {
                    println!("{name}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--write-baseline" => write_baseline = true,
            "--format" => match it.next().map(|v| diag::Format::parse(v)) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => {
                    eprintln!("xtask analyze: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("xtask analyze: --format needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask analyze: --baseline needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let project = match item_model::Project::load(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut diags = analyze::run_all(&project);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ANALYZE_BASELINE.txt"));
    let shown = baseline_path.display();
    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, analyze::render_baseline(&diags)) {
            eprintln!("xtask analyze: cannot write {shown}: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: baselined {} finding(s) into {shown}", diags.len());
        return ExitCode::SUCCESS;
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match analyze::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask analyze: {shown}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Default::default(), // no baseline file: everything active
    };
    let stale = analyze::apply_baseline(&mut diags, &baseline);
    print!("{}", diag::render(&diags, format));
    for entry in &stale {
        eprintln!(
            "xtask analyze: stale baseline entry ({entry}) — ratchet down with --write-baseline"
        );
    }
    let active = diags.iter().filter(|d| !d.baselined).count();
    if format == diag::Format::Human {
        println!(
            "xtask analyze: {} file(s), {} pass(es): {} finding(s) ({} baselined, {active} active)",
            project.files.len(),
            analyze::PASSES.len(),
            diags.len(),
            diags.len() - active,
        );
    }
    if active == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_gate_cmd(args: &[String]) -> ExitCode {
    let [baseline_path, current_path] = args else {
        eprintln!("xtask bench-gate: expected exactly two file arguments (baseline, current)");
        return ExitCode::FAILURE;
    };
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("xtask bench-gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };
    match bench_gate::compare(&baseline, &current) {
        Ok(comparisons) => {
            let mut failed = 0usize;
            for c in &comparisons {
                let verdict = if c.pass { "ok" } else { "REGRESSION" };
                failed += usize::from(!c.pass);
                println!(
                    "xtask bench-gate: {}: {:.0} -> {:.0} ({:.2}x) {verdict}",
                    c.key, c.baseline, c.current, c.ratio
                );
            }
            if failed == 0 {
                println!(
                    "xtask bench-gate: {} key(s) within {:.0}% of baseline",
                    comparisons.len(),
                    (1.0 - bench_gate::MIN_RATIO) * 100.0
                );
                ExitCode::SUCCESS
            } else {
                println!("xtask bench-gate: {failed} key(s) regressed");
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("xtask bench-gate: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn journal_check_cmd(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("xtask journal-check: expected exactly one file argument");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask journal-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match journal_check::check_journal(&text) {
        Ok(summary) => {
            let torn = if summary.torn_tail { " (torn final line ignored)" } else { "" };
            println!(
                "xtask journal-check: {path}: {} records ok, fingerprint `{}`{torn}",
                summary.records, summary.fingerprint
            );
            ExitCode::SUCCESS
        }
        Err((line, msg)) => {
            eprintln!("xtask journal-check: {path}:{line}: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn trace_check_cmd(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("xtask trace-check: expected exactly one file argument");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask trace-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match trace_check::check_jsonl(&text) {
        Ok(lines) => {
            println!("xtask trace-check: {path}: {lines} lines ok");
            ExitCode::SUCCESS
        }
        Err((line, msg)) => {
            eprintln!("xtask trace-check: {path}:{line}: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = diag::Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for id in rules::rule_ids() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--format" => match it.next().map(|v| diag::Format::parse(v)) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => {
                    eprintln!("xtask lint: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("xtask lint: --format needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = workspace_root();
    let files = collect_sources(&root);
    let mut diags = Vec::new();
    for file in &files {
        let rel = relative(file, &root);
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let lines = lexer::lex(&src);
        for v in rules::lint_file(&rel, &lines) {
            diags.push(diag::Diagnostic {
                tool: "lint",
                rule: v.rule.to_string(),
                path: v.path,
                line: v.line,
                item: String::new(),
                token: v.token.clone(),
                message: format!("`{}` — {}", v.token, v.hint),
                baselined: false,
            });
        }
    }
    print!("{}", diag::render(&diags, format));
    if format == diag::Format::Human {
        if diags.is_empty() {
            println!("xtask lint: {} files clean", files.len());
        } else {
            println!("xtask lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root is xtask's parent directory, regardless of cwd.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// All lintable `.rs` files: `crates/*/src`, root `src/`, and root `tests/`
/// (tests are scanned so the wall-clock rule covers them; per-rule scopes
/// narrow further). `vendor/` and `target/` are never scanned.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            walk(&dir.join("src"), &mut files);
        }
    }
    walk(&root.join("src"), &mut files);
    walk(&root.join("tests"), &mut files);
    files.sort();
    files
}

/// Recursively gathers `.rs` files under `dir`, depth-first, sorted.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with forward slashes (stable lint output on
/// every platform).
fn relative(file: &Path, root: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
