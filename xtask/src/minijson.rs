//! Dependency-free helpers for the hand-emitted flat-JSON artifacts the
//! xtask validators audit (`trace-check`, `journal-check`) and the
//! shared diagnostics reporter emits (`diag`).
//!
//! The writers in `tiersim-trace`/`tiersim-core` emit one flat object per
//! line with no nested escaping surprises, so field extraction needs no
//! JSON parser — just key-anchored scans that respect `\"` escapes. The
//! FNV-1a64 here is the journal's checksum, deliberately implemented
//! independently from `tiersim_core::journal::codec` so the validator
//! shares no code with the writer it audits.

/// Extracts `"name":<u64>` from a flat JSON line. Quotes inside string
/// values are escaped (`\"`), so a raw `"name":` match is always a key.
pub fn u64_field(line: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = line.find(&key)? + key.len();
    let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts `"name":"<value>"` from a flat JSON line, respecting `\"`
/// escapes inside the value. Returns the raw (still-escaped) slice.
pub fn str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\":\"");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Some(&rest[..i]),
            _ => {}
        }
    }
    None
}

/// FNV-1a 64-bit over `bytes` — the sweep journal's line checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_field_reads_first_matching_key() {
        let line = "{\"t\":10,\"seq\":3,\"recorded\":42}";
        assert_eq!(u64_field(line, "t"), Some(10));
        assert_eq!(u64_field(line, "seq"), Some(3));
        assert_eq!(u64_field(line, "recorded"), Some(42));
        assert_eq!(u64_field(line, "missing"), None);
        // A key with a non-numeric value yields nothing.
        assert_eq!(u64_field("{\"t\":\"x\"}", "t"), None);
    }

    #[test]
    fn str_field_respects_escapes() {
        assert_eq!(str_field("{\"event\":\"hint_fault\",\"x\":1}", "event"), Some("hint_fault"));
        assert_eq!(
            str_field("\"error\":\"a \\\"quoted\\\" msg\",\"x\":1", "error"),
            Some("a \\\"quoted\\\" msg")
        );
        assert_eq!(str_field("\"k\":\"unterminated", "k"), None);
        assert_eq!(str_field("\"k\":1", "k"), None);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn escape_covers_quotes_backslashes_and_control() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
