//! The determinism lint rules.
//!
//! Each rule is data: an id, a path scope, a set of trigger tokens, and a
//! fix hint. Matching is token-based on the lexer's blanked code (so
//! strings and comments never trigger), with identifier-boundary checks so
//! e.g. `my_unwrap_helper` does not match `unwrap`.
//!
//! A violation on line N is suppressed when line N or line N-1 carries a
//! `tiersim-lint: allow(<rule>)` comment.

use crate::lexer::{is_ident_char, CodeLine};

/// A single lint finding.
#[derive(Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    /// The token that triggered the rule.
    pub token: String,
    pub hint: &'static str,
}

/// Where a rule applies, as predicates over workspace-relative paths
/// (forward slashes).
#[derive(Debug, Clone, Copy)]
enum Scope {
    /// Everything except `crates/bench/` and `xtask/`.
    NoWallClock,
    /// Ordering-sensitive paths: policy + profile libraries and the
    /// report/render layer in core.
    OrderSensitive,
    /// Library crate sources (`crates/*/src/`, root `src/`), excluding
    /// binaries (`/bin/`, `main.rs`) and the bench crate.
    LibraryCode,
    /// Address/page arithmetic modules in `mem`.
    AddrArithmetic,
    /// Everywhere except the sweep executor (`crates/core/src/sweep.rs`)
    /// and `xtask/` itself: the one module allowed to start threads, so
    /// all parallelism funnels through its index-ordered, scope-joined
    /// pool (the determinism contract, DESIGN.md §10).
    NoUnscopedThreads,
    /// Floating-point control math in `os`: the threshold controller and
    /// the promotion rate limiter, where a bare float→int `as` cast once
    /// hid the stuck-threshold and stalled-bucket bugs (PR 5).
    FloatControlMath,
    /// Everywhere except the SoA page-metadata module itself
    /// (`crates/mem/src/page.rs` + `page_table.rs`): `PageInfo` is a
    /// materialized *view* of the struct-of-arrays state, so outside code
    /// must never build one by hand (DESIGN.md §12).
    PageMetadataOwners,
    /// Everywhere except the journal module (`crates/core/src/journal/`),
    /// which owns the tmp + fsync + rename helper, and `xtask/` itself:
    /// a bare `fs::write` can leave a half-written artifact after a crash
    /// (DESIGN.md §13).
    DurableWriters,
}

impl Scope {
    fn applies(self, path: &str) -> bool {
        let in_bin = path.contains("/bin/") || path.ends_with("/main.rs");
        match self {
            Scope::NoWallClock => !path.starts_with("crates/bench/") && !path.starts_with("xtask/"),
            Scope::OrderSensitive => {
                path.starts_with("crates/policy/src/")
                    || path.starts_with("crates/profile/src/")
                    || path == "crates/core/src/report.rs"
                    || path == "crates/core/src/render.rs"
            }
            Scope::LibraryCode => {
                !in_bin
                    && !path.starts_with("crates/bench/")
                    && !path.starts_with("xtask/")
                    && !path.starts_with("vendor/")
                    && (path.starts_with("crates/") || path.starts_with("src/"))
            }
            Scope::AddrArithmetic => {
                path == "crates/mem/src/addr.rs"
                    || path == "crates/mem/src/page_table.rs"
                    || path == "crates/mem/src/frame.rs"
            }
            Scope::NoUnscopedThreads => {
                path != "crates/core/src/sweep.rs" && !path.starts_with("xtask/")
            }
            Scope::FloatControlMath => {
                path == "crates/os/src/threshold.rs" || path == "crates/os/src/rate_limit.rs"
            }
            Scope::PageMetadataOwners => {
                !path.starts_with("vendor/")
                    && !path.starts_with("xtask/")
                    && path != "crates/mem/src/page.rs"
                    && path != "crates/mem/src/page_table.rs"
            }
            Scope::DurableWriters => {
                !path.starts_with("vendor/")
                    && !path.starts_with("xtask/")
                    && !path.starts_with("crates/core/src/journal/")
            }
        }
    }
}

/// How a rule inspects a line.
#[derive(Debug, Clone, Copy)]
enum Matcher {
    /// Any of these identifiers present as a whole token.
    Tokens(&'static [&'static str]),
    /// A narrowing `as <ty>` cast (`as u64`/`u128`/`f64` stay legal:
    /// page/address math widens into them losslessly).
    LossyCast,
    /// `HashMap`/`HashSet` named anywhere: in an order-sensitive file any
    /// use is suspect, because iteration order can reach the output.
    HashContainer,
    /// An `as <int-type>` cast on a line with no explicit rounding call
    /// (`floor`/`round`/`ceil`): in float-heavy control math a bare cast
    /// truncates toward zero silently.
    UnroundedIntCast,
    /// Direct construction of `PageInfo` — the literal `PageInfo {` or a
    /// `PageInfo::new` call — or a write to the view's `huge` field
    /// (`.huge = ...`). Plain type mentions (returns, parameters, field
    /// reads, `==`/`=>` comparisons) stay legal. `huge` is block-level
    /// SoA state: `PageTable::update` deliberately does not persist it,
    /// so an outside write is silently dropped at best.
    PageInfoConstruct,
    /// A direct `fs::write` call (the `fs`/`write` token pair): not
    /// crash-safe — a crash mid-call leaves a truncated file.
    FsWrite,
}

struct Rule {
    id: &'static str,
    scope: Scope,
    matcher: Matcher,
    /// Whether `#[cfg(test)]` / `#[test]` regions are exempt.
    exempt_tests: bool,
    hint: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        scope: Scope::NoWallClock,
        matcher: Matcher::Tokens(&["Instant", "SystemTime"]),
        // Wall-clock reads break replay determinism even in tests.
        exempt_tests: false,
        hint: "simulated time only: derive timing from the cost model (crates/bench may measure real time)",
    },
    Rule {
        id: "hash-iter",
        scope: Scope::OrderSensitive,
        matcher: Matcher::HashContainer,
        exempt_tests: true,
        hint: "iteration order reaches ranking/CSV output: use BTreeMap/BTreeSet or sort explicitly",
    },
    Rule {
        id: "unwrap",
        scope: Scope::LibraryCode,
        matcher: Matcher::Tokens(&["unwrap", "expect"]),
        exempt_tests: true,
        hint: "library code must propagate errors: return Result or handle the None/Err arm",
    },
    Rule {
        id: "lossy-cast",
        scope: Scope::AddrArithmetic,
        matcher: Matcher::LossyCast,
        exempt_tests: true,
        hint: "narrowing `as` in address/page arithmetic can truncate silently: use try_into or a checked helper",
    },
    Rule {
        id: "thread-spawn",
        scope: Scope::NoUnscopedThreads,
        matcher: Matcher::Tokens(&["spawn", "JoinHandle", "Builder"]),
        // Stray threads break replay determinism even in tests.
        exempt_tests: false,
        hint: "threads only via the sweep executor (tiersim_core::sweep::run_cells): scoped, joined, index-ordered",
    },
    Rule {
        id: "float-trunc",
        scope: Scope::FloatControlMath,
        matcher: Matcher::UnroundedIntCast,
        exempt_tests: true,
        hint: "float→int `as` truncates toward zero: call .floor()/.round()/.ceil() on the same line so the rounding direction is explicit (the stuck-threshold bug hid behind a bare cast)",
    },
    Rule {
        id: "pageinfo-construct",
        scope: Scope::PageMetadataOwners,
        matcher: Matcher::PageInfoConstruct,
        exempt_tests: true,
        hint: "PageInfo is a view over the SoA page metadata: go through PageTable (map/migrate/info accessors, collapse/split for `huge`) instead of building or mutating one by hand",
    },
    Rule {
        id: "atomic-write",
        scope: Scope::DurableWriters,
        matcher: Matcher::FsWrite,
        exempt_tests: true,
        hint: "direct fs::write can leave a half-written artifact after a crash: use tiersim_core::journal::atomic_write (tmp + fsync + rename)",
    },
    Rule {
        id: "println",
        scope: Scope::LibraryCode,
        matcher: Matcher::Tokens(&["println", "print", "eprintln", "eprint", "dbg"]),
        exempt_tests: true,
        hint: "library output must flow through report/render so runs stay comparable",
    },
];

/// Target types whose `as` casts can drop address/page bits.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize"];

/// All integer cast targets — for float math even a "wide" `as u64`
/// silently drops the fractional part.
const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Rounding calls that make a subsequent int cast intentional.
const ROUNDING_CALLS: &[&str] = &["floor", "round", "ceil", "trunc"];

/// Returns the rule ids, for `--list`.
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

/// Lints one lexed file; `path` is workspace-relative with `/` separators.
pub fn lint_file(path: &str, lines: &[CodeLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in RULES {
        if !rule.scope.applies(path) {
            continue;
        }
        for (idx, line) in lines.iter().enumerate() {
            if rule.exempt_tests && line.in_test {
                continue;
            }
            let matched = match rule.matcher {
                Matcher::Tokens(tokens) => match_tokens(&line.code, tokens),
                Matcher::LossyCast => match_lossy_cast(&line.code),
                Matcher::HashContainer => match_tokens(&line.code, &["HashMap", "HashSet"]),
                Matcher::UnroundedIntCast => match_unrounded_int_cast(&line.code),
                Matcher::PageInfoConstruct => match_pageinfo_construct(&line.code),
                Matcher::FsWrite => match_fs_write(&line.code),
            };
            let Some(token) = matched else { continue };
            if allowed(rule.id, lines, idx) {
                continue;
            }
            out.push(Violation {
                path: path.to_string(),
                line: line.number,
                rule: rule.id,
                token,
                hint: rule.hint,
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Finds the first of `tokens` present as a whole identifier in `code`.
fn match_tokens(code: &str, tokens: &[&str]) -> Option<String> {
    tokens.iter().find(|t| has_token(code, t)).map(|t| t.to_string())
}

/// Whole-token search: `needle` must not be flanked by identifier chars.
fn has_token(code: &str, needle: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let nchars: Vec<char> = needle.chars().collect();
    if nchars.is_empty() || chars.len() < nchars.len() {
        return false;
    }
    for start in 0..=(chars.len() - nchars.len()) {
        if chars[start..start + nchars.len()] != nchars[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident_char(chars[start - 1]);
        let after = chars.get(start + nchars.len()).copied();
        let after_ok = !after.map(is_ident_char).unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Detects `as <narrow-type>` with token boundaries on both sides.
fn match_lossy_cast(code: &str) -> Option<String> {
    let words: Vec<&str> =
        code.split(|c: char| !is_ident_char(c)).filter(|w| !w.is_empty()).collect();
    for pair in words.windows(2) {
        if pair[0] == "as" && NARROW_TYPES.contains(&pair[1]) {
            // `as` must be the cast keyword, not part of a path — the word
            // split already guarantees token boundaries.
            return Some(format!("as {}", pair[1]));
        }
    }
    None
}

/// Detects `as <int-type>` on a line with no rounding call. An explicit
/// `.floor()`/`.round()`/`.ceil()`/`.trunc()` on the same line states the
/// rounding direction and legitimizes the cast.
fn match_unrounded_int_cast(code: &str) -> Option<String> {
    if ROUNDING_CALLS.iter().any(|t| has_token(code, t)) {
        return None;
    }
    let words: Vec<&str> =
        code.split(|c: char| !is_ident_char(c)).filter(|w| !w.is_empty()).collect();
    for pair in words.windows(2) {
        if pair[0] == "as" && INT_TYPES.contains(&pair[1]) {
            return Some(format!("as {}", pair[1]));
        }
    }
    None
}

/// Detects direct `PageInfo` construction: the struct literal
/// `PageInfo {` (any whitespace before the brace) or `PageInfo::new`.
/// A bare `PageInfo` token (type position, field access) does not match.
/// Also detects writes to the view's huge-page SoA field (`.huge = ...`):
/// `huge` mirrors block-level state the view cannot own, so only the SoA
/// module may flip it. Reads and `==`/`=>` comparisons stay legal.
fn match_pageinfo_construct(code: &str) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let needle: Vec<char> = "PageInfo".chars().collect();
    if chars.len() >= needle.len() {
        for start in 0..=(chars.len() - needle.len()) {
            if chars[start..start + needle.len()] != needle[..] {
                continue;
            }
            if start > 0 && is_ident_char(chars[start - 1]) {
                continue;
            }
            let rest: String = chars[start + needle.len()..].iter().collect();
            let trimmed = rest.trim_start();
            if trimmed.starts_with('{') {
                return Some("PageInfo {".to_string());
            }
            if trimmed.starts_with("::new") {
                return Some("PageInfo::new".to_string());
            }
        }
    }
    match_huge_field_write(&chars)
}

/// Detects `.huge = <expr>` — an assignment to the `huge` view field.
/// Requires the leading `.` (so `let huge = ...` locals stay legal) and a
/// single `=` (so `.huge ==` and the match-guard `.huge =>` do not fire).
fn match_huge_field_write(chars: &[char]) -> Option<String> {
    let needle: Vec<char> = ".huge".chars().collect();
    if chars.len() < needle.len() {
        return None;
    }
    for start in 0..=(chars.len() - needle.len()) {
        if chars[start..start + needle.len()] != needle[..] {
            continue;
        }
        // The field name must end here (`.hugepage` is some other field),
        // and what follows must be a lone `=`.
        let after = chars.get(start + needle.len()).copied();
        if after.map(is_ident_char).unwrap_or(false) {
            continue;
        }
        let rest: String = chars[start + needle.len()..].iter().collect();
        let trimmed = rest.trim_start();
        if trimmed.starts_with('=') && !trimmed.starts_with("==") && !trimmed.starts_with("=>") {
            return Some(".huge =".to_string());
        }
    }
    None
}

/// Detects a direct `fs::write` call as the adjacent `fs`, `write` word
/// pair (the lexer's word split drops `::`). Plain `write`/`write_all`
/// calls on a file handle do not match.
fn match_fs_write(code: &str) -> Option<String> {
    let words: Vec<&str> =
        code.split(|c: char| !is_ident_char(c)).filter(|w| !w.is_empty()).collect();
    for pair in words.windows(2) {
        if pair[0] == "fs" && pair[1] == "write" {
            return Some("fs::write".to_string());
        }
    }
    None
}

/// Is `rule` allowed on line `idx` (same line or the line just above)?
fn allowed(rule: &str, lines: &[CodeLine], idx: usize) -> bool {
    let needle = format!("tiersim-lint: allow({rule})");
    let same = lines[idx].comment.contains(&needle);
    let above = idx > 0 && lines[idx - 1].comment.contains(&needle);
    same || above
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn unwrap_fires_in_library_code() {
        let lines = lex("fn f() { x.unwrap(); }");
        let v = lint_file("crates/mem/src/addr.rs", &lines);
        assert!(v.iter().any(|v| v.rule == "unwrap"));
    }

    #[test]
    fn unwrap_exempt_in_tests_and_bins() {
        let lines = lex("#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}");
        assert!(lint_file("crates/mem/src/addr.rs", &lines).iter().all(|v| v.rule != "unwrap"));
        let lines = lex("fn f() { x.unwrap(); }");
        assert!(lint_file("src/bin/tiersim.rs", &lines).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let lines = lex("// tiersim-lint: allow(unwrap)\nlet y = x.unwrap();");
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
        let lines = lex("let y = x.unwrap(); // tiersim-lint: allow(unwrap)");
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
    }

    #[test]
    fn wall_clock_fires_even_in_tests_but_not_in_bench() {
        let lines = lex("#[test]\nfn t() { let t0 = Instant::now(); }");
        assert!(!lint_file("crates/core/src/runner.rs", &lines).is_empty());
        assert!(lint_file("crates/bench/src/lib.rs", &lines).is_empty());
    }

    #[test]
    fn lossy_cast_scope_and_widths() {
        let lines = lex("let x = v as u32;");
        assert!(!lint_file("crates/mem/src/addr.rs", &lines).is_empty());
        // Widening is fine; other crates are out of scope.
        let wide = lex("let x = v as u64;");
        assert!(lint_file("crates/mem/src/addr.rs", &wide).is_empty());
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
    }

    #[test]
    fn float_trunc_fires_on_bare_cast_in_control_math() {
        // The pre-fix threshold controller shape: bare truncating cast.
        let bare = lex("let next = (self.threshold as f64 * 0.8) as u64;");
        let v = lint_file("crates/os/src/threshold.rs", &bare);
        assert!(v.iter().any(|v| v.rule == "float-trunc" && v.token == "as u64"));
        assert!(lint_file("crates/os/src/rate_limit.rs", &bare)
            .iter()
            .any(|v| v.rule == "float-trunc"));
    }

    #[test]
    fn float_trunc_passes_explicit_rounding_and_other_paths() {
        // The fixed shapes: rounding made explicit on the same line.
        let rounded = lex("let next = (self.threshold as f64 * 0.8).round() as u64;");
        assert!(lint_file("crates/os/src/threshold.rs", &rounded).is_empty());
        let floored = lex("self.tokens.floor() as u64");
        assert!(lint_file("crates/os/src/rate_limit.rs", &floored).is_empty());
        // Casts into floats are not truncations.
        let widen = lex("let t = elapsed as f64;");
        assert!(lint_file("crates/os/src/rate_limit.rs", &widen).is_empty());
        // Out-of-scope files are untouched (engine.rs has many int casts).
        let bare = lex("let next = x as u64;");
        assert!(lint_file("crates/os/src/engine.rs", &bare).is_empty());
        // Tests and the allow comment are exempt like everywhere else.
        let test_code = lex("#[cfg(test)]\nmod tests {\n let x = y as u64;\n}");
        assert!(lint_file("crates/os/src/threshold.rs", &test_code).is_empty());
        let allowed = lex("// tiersim-lint: allow(float-trunc)\nlet x = y as u64;");
        assert!(lint_file("crates/os/src/threshold.rs", &allowed).is_empty());
    }

    #[test]
    fn hash_container_only_in_order_sensitive_paths() {
        let lines = lex("use std::collections::HashMap;");
        assert!(!lint_file("crates/policy/src/ranking.rs", &lines).is_empty());
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
    }

    #[test]
    fn thread_spawn_forbidden_outside_sweep_module() {
        let lines = lex("fn f() { std::thread::spawn(|| {}); }");
        let v = lint_file("crates/core/src/runner.rs", &lines);
        assert!(v.iter().any(|v| v.rule == "thread-spawn"));
        // Root tests and other crates are covered too — even in #[test].
        let t = lex("#[test]\nfn t() { let h: std::thread::JoinHandle<()> = todo!(); }");
        assert!(lint_file("tests/pipeline.rs", &t).iter().any(|v| v.rule == "thread-spawn"));
        assert!(lint_file("crates/os/src/engine.rs", &lines)
            .iter()
            .any(|v| v.rule == "thread-spawn"));
    }

    #[test]
    fn thread_spawn_allowed_in_sweep_executor_and_xtask() {
        let lines = lex("fn f() { s.spawn(|| {}); }");
        assert!(lint_file("crates/core/src/sweep.rs", &lines).is_empty());
        assert!(lint_file("xtask/src/main.rs", &lines).is_empty());
        // The allowlist comment works like for every other rule.
        let allowed = lex("// tiersim-lint: allow(thread-spawn)\nlet h = s.spawn(f);");
        assert!(lint_file("crates/core/src/runner.rs", &allowed).is_empty());
    }

    #[test]
    fn pageinfo_construction_confined_to_soa_module() {
        let literal = lex("let p = PageInfo { tier, flags, scan_time: 0, last_access: 0 };");
        assert!(lint_file("crates/os/src/engine.rs", &literal)
            .iter()
            .any(|v| v.rule == "pageinfo-construct"));
        let ctor = lex("let p = PageInfo::new(Tier::Dram);");
        assert!(lint_file("crates/mem/src/system.rs", &ctor)
            .iter()
            .any(|v| v.rule == "pageinfo-construct"));
        // The owning SoA module may construct views.
        assert!(lint_file("crates/mem/src/page.rs", &literal).is_empty());
        assert!(lint_file("crates/mem/src/page_table.rs", &ctor).is_empty());
        // Type positions and field reads stay legal everywhere.
        let uses = lex("fn page(&self) -> Option<PageInfo> { let t = info.tier; }");
        assert!(lint_file("crates/os/src/engine.rs", &uses).is_empty());
        // Tests are exempt (they build fixtures by hand).
        let test_code = lex("#[cfg(test)]\nmod tests {\n let p = PageInfo { tier };\n}");
        assert!(lint_file("crates/os/src/engine.rs", &test_code).is_empty());
    }

    #[test]
    fn huge_field_write_confined_to_soa_module() {
        // Flipping the huge view field outside the SoA module is lost on
        // write-back (PageTable::update does not persist it) — flagged.
        let write = lex("info.huge = true;");
        assert!(lint_file("crates/os/src/engine.rs", &write)
            .iter()
            .any(|v| v.rule == "pageinfo-construct" && v.token == ".huge ="));
        assert!(lint_file("crates/mem/src/system.rs", &write)
            .iter()
            .any(|v| v.rule == "pageinfo-construct"));
        // The owning SoA module manages the column directly.
        assert!(lint_file("crates/mem/src/page_table.rs", &write).is_empty());
        // Reads, comparisons, and match guards stay legal everywhere.
        let legal = lex(
            "let h = info.huge;\nif info.huge == other {}\nmatch p { Some(i) if i.huge => {} _ => {} }",
        );
        assert!(lint_file("crates/os/src/engine.rs", &legal).is_empty());
        // Other fields that merely start with the same letters are fine,
        // as are plain locals named `huge`.
        let near = lex("self.hugepage = 1;\nlet huge = mem.is_huge(pn);");
        assert!(lint_file("crates/os/src/engine.rs", &near).is_empty());
    }

    #[test]
    fn fs_write_forbidden_outside_journal_module() {
        let lines = lex("fn f() { std::fs::write(path, bytes).unwrap(); }");
        assert!(lint_file("crates/bench/src/lib.rs", &lines)
            .iter()
            .any(|v| v.rule == "atomic-write"));
        assert!(lint_file("crates/core/src/runner.rs", &lines)
            .iter()
            .any(|v| v.rule == "atomic-write"));
        // The atomic helper's own module and xtask are exempt.
        assert!(lint_file("crates/core/src/journal/mod.rs", &lines)
            .iter()
            .all(|v| v.rule != "atomic-write"));
        assert!(lint_file("xtask/src/main.rs", &lines).is_empty());
        // Tests may write fixtures directly; file-handle writes are fine.
        let test_code = lex("#[cfg(test)]\nmod tests {\n std::fs::write(p, b).unwrap();\n}");
        assert!(lint_file("crates/bench/src/lib.rs", &test_code)
            .iter()
            .all(|v| v.rule != "atomic-write"));
        let handle = lex("file.write_all(bytes)?;");
        assert!(lint_file("crates/bench/src/lib.rs", &handle).is_empty());
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let lines = lex("let s = \"Instant::now()\"; // println! here");
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
    }

    #[test]
    fn ident_boundaries_respected() {
        let lines = lex("fn my_unwrap_helper() {}\nlet printless = 1;");
        assert!(lint_file("crates/os/src/engine.rs", &lines).is_empty());
    }
}
