//! `cargo xtask trace-check <file.jsonl>`: schema validation for
//! `repro_all --trace` output.
//!
//! Mirrors the hand-emitted JSONL layout of `tiersim-trace` (DESIGN.md
//! §11) without a JSON parser, so the offline CI toolchain can verify
//! trace artifacts with nothing beyond std:
//!
//! - every line is a flat object with `t`, `seq` and `event` keys;
//! - `event` names come from the known vocabulary;
//! - `seq` is strictly increasing (records, then metrics snapshots);
//! - the last line is a `trace_summary` carrying `recorded`/`dropped`,
//!   and `recorded` matches the sequence numbering.

use crate::minijson::{str_field, u64_field};

/// The event vocabulary the exporter can emit. Kept in sync with
/// `TraceEvent::name()` plus the two synthetic exporter lines — the
/// `trace-coverage` analyze pass enforces the sync statically.
pub const KNOWN_EVENTS: &[&str] = &[
    "hint_fault",
    "promote_candidate",
    "promote_accept",
    "promote_reject",
    "demote_kswapd",
    "demote_direct",
    "promote_demoted",
    "migrate_retry",
    "migrate_fail",
    "threshold_adjust",
    "rate_limit_consume",
    "rate_limit_deny",
    "fault_injected",
    "reclaim_stall",
    "page_cache_drop",
    "thp_collapse",
    "thp_split",
    "fault_around",
    "cell_start",
    "cell_done",
    "cell_retry",
    "cell_quarantine",
    "rung_start",
    "cell_scored",
    "pareto_update",
    "metrics_snapshot",
    "trace_summary",
];

/// Validates a JSONL trace. Returns the number of lines checked, or the
/// first problem as `(1-based line, message)`.
pub fn check_jsonl(text: &str) -> Result<usize, (usize, String)> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err((0, "empty trace file".to_string()));
    }
    let mut prev_seq: Option<u64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let n = idx + 1;
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err((n, "line is not a flat JSON object".to_string()));
        }
        u64_field(line, "t").ok_or_else(|| (n, "missing numeric `t` key".to_string()))?;
        let seq =
            u64_field(line, "seq").ok_or_else(|| (n, "missing numeric `seq` key".to_string()))?;
        let event = str_field(line, "event")
            .ok_or_else(|| (n, "missing string `event` key".to_string()))?;
        if !KNOWN_EVENTS.contains(&event) {
            return Err((n, format!("unknown event `{event}`")));
        }
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err((n, format!("seq went {prev} -> {seq}, must strictly increase")));
            }
        }
        prev_seq = Some(seq);
        let is_last = n == lines.len();
        if (event == "trace_summary") != is_last {
            return Err((n, "trace_summary must be exactly the final line".to_string()));
        }
        if is_last {
            let recorded = u64_field(line, "recorded")
                .ok_or_else(|| (n, "summary missing `recorded`".to_string()))?;
            u64_field(line, "dropped")
                .ok_or_else(|| (n, "summary missing `dropped`".to_string()))?;
            // Record lines number 0..recorded; snapshots and the summary
            // continue the sequence, so the summary's seq is the line
            // budget check: seq >= recorded and recorded >= event lines.
            if seq < recorded {
                return Err((n, format!("summary seq {seq} < recorded {recorded}")));
            }
        }
    }
    Ok(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
{\"t\":10,\"seq\":0,\"event\":\"hint_fault\",\"page\":7}\n\
{\"t\":10,\"seq\":1,\"event\":\"promote_reject\",\"page\":7,\"reason\":\"rate_limited\"}\n\
{\"t\":20,\"seq\":2,\"event\":\"metrics_snapshot\",\"metrics\":{\"threshold_cycles\":800}}\n\
{\"t\":20,\"seq\":3,\"event\":\"trace_summary\",\"recorded\":2,\"dropped\":0}\n";

    #[test]
    fn accepts_well_formed_trace() {
        assert_eq!(check_jsonl(GOOD), Ok(4));
    }

    #[test]
    fn rejects_empty_and_malformed() {
        assert!(check_jsonl("").is_err());
        assert!(check_jsonl("not json\n").is_err());
        let no_seq = "{\"t\":1,\"event\":\"hint_fault\"}\n";
        assert_eq!(check_jsonl(no_seq).unwrap_err().0, 1);
    }

    #[test]
    fn rejects_unknown_event_and_broken_seq() {
        let unknown = GOOD.replace("hint_fault", "mystery_event");
        assert!(check_jsonl(&unknown).unwrap_err().1.contains("unknown event"));
        let stuck = GOOD.replace("\"seq\":1", "\"seq\":0");
        assert!(check_jsonl(&stuck).unwrap_err().1.contains("strictly increase"));
    }

    #[test]
    fn requires_summary_last_and_consistent() {
        let missing = GOOD.lines().take(3).collect::<Vec<_>>().join("\n") + "\n";
        assert!(check_jsonl(&missing).unwrap_err().1.contains("trace_summary"));
        let early = GOOD.replace("metrics_snapshot", "trace_summary");
        assert!(check_jsonl(&early).unwrap_err().1.contains("final line"));
        let inflated = GOOD.replace("\"recorded\":2", "\"recorded\":9");
        assert!(check_jsonl(&inflated).unwrap_err().1.contains("summary seq"));
    }
}
